//! In-memory PUL evaluation in the five stages of the XQuery Update Facility.
//!
//! The semantics follows §2.2: operations are applied in five stages —
//! (1) `ins↓, insA, repV, ren`, (2) `ins←, ins→, ins↙, ins↘`, (3) `repN`,
//! (4) `repC`, (5) `del` — so that, e.g., deletions always follow every other
//! operation and insertions relative to a replaced node still take effect.
//!
//! Where the specification leaves freedom (the position chosen by `ins↓`, the
//! relative order of several insertions of the same type on the same target)
//! this evaluator makes a *deterministic* choice: `ins↓` inserts as first
//! children (consistently with the deterministic reduction of Def. 8, which
//! rewrites `ins↓` into `ins↙`), and operations within a stage are applied in
//! the canonical order (target document order, then parameter order). The full
//! non-deterministic semantics is available in [`crate::obtainable`].

use std::collections::{HashMap, HashSet};

use xdm::{Document, NodeId, NodeKind, Tree};
use xlabel::Labeling;

use crate::error::PulError;
use crate::op::UpdateOp;
use crate::pul::Pul;
use crate::Result;

/// Options controlling PUL evaluation.
#[derive(Debug, Clone)]
pub struct ApplyOptions {
    /// Validate PUL applicability (Def. 4) before applying. Defaults to `true`.
    pub validate: bool,
    /// Preserve the node identifiers of the parameter trees when grafting them
    /// into the document. This is how a *producer* applies its own PULs, so
    /// that later PULs of a sequence can refer to the nodes inserted by earlier
    /// ones (§4.1); the *executor* typically assigns fresh identifiers instead.
    pub preserve_content_ids: bool,
}

impl Default for ApplyOptions {
    fn default() -> Self {
        ApplyOptions { validate: true, preserve_content_ids: false }
    }
}

impl ApplyOptions {
    /// Producer-side options: parameter-tree identifiers are preserved.
    pub fn producer() -> Self {
        ApplyOptions { validate: true, preserve_content_ids: true }
    }
}

/// Journal handle of an application: how many inverse entries the journaled
/// apply recorded on the document and on the labeling. Both are proportional
/// to the size of the *change* — this is what the `commit_memory` benchmark
/// asserts stays flat as the document grows. Zero for non-journaled applies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Inverse entries recorded in the document journal.
    pub doc_entries: usize,
    /// Inverse entries recorded in the labeling journal.
    pub label_entries: usize,
}

impl JournalStats {
    /// Total inverse entries recorded across document and labeling.
    pub fn total(self) -> usize {
        self.doc_entries + self.label_entries
    }
}

/// Summary of the effects of a PUL application.
#[derive(Debug, Clone, Default)]
pub struct ApplyReport {
    /// Roots of the subtrees inserted into the document.
    pub inserted_roots: Vec<NodeId>,
    /// Nodes removed from the document (roots of removed subtrees).
    pub removed_roots: Vec<NodeId>,
    /// *All* nodes removed from the document, including the descendants of the
    /// removed roots and the children cleared by `repC` — exactly the
    /// identifiers whose labels must be dropped by [`Labeling::patch`].
    pub removed_nodes: Vec<NodeId>,
    /// Mapping from parameter-tree identifiers to the identifiers assigned in
    /// the document (the identity when identifiers are preserved).
    pub id_map: HashMap<NodeId, NodeId>,
    /// Journal entries recorded by [`apply_pul_journaled`] (zero otherwise).
    pub journal: JournalStats,
}

/// Applies a PUL to a document (deterministic semantics).
pub fn apply_pul(doc: &mut Document, pul: &Pul, opts: &ApplyOptions) -> Result<ApplyReport> {
    if opts.validate {
        pul.check_applicable(doc)?;
    }
    let mut report = ApplyReport::default();

    // Deterministic order: by stage, then target, then name, then parameters.
    let mut ordered: Vec<&UpdateOp> = pul.ops().iter().collect();
    ordered.sort_by(|a, b| {
        (a.stage(), a.target(), a.name().code(), a.param_sort_key()).cmp(&(
            b.stage(),
            b.target(),
            b.name().code(),
            b.param_sort_key(),
        ))
    });

    for op in ordered {
        apply_one(doc, op, opts, &mut report)?;
    }
    Ok(report)
}

/// Applies a PUL to a document, also maintaining the labeling: inserted nodes
/// receive fresh labels (without relabeling existing nodes) and removed nodes
/// lose theirs. This is what the executor does on the authoritative copy; the
/// labeling update is an incremental [`Labeling::patch`] driven by the apply
/// report, so its cost is proportional to the size of the change.
pub fn apply_pul_with_labeling(
    doc: &mut Document,
    labeling: &mut Labeling,
    pul: &Pul,
    opts: &ApplyOptions,
) -> Result<ApplyReport> {
    let report = apply_pul(doc, pul, opts)?;
    labeling.patch(doc, &report.inserted_roots, &report.removed_nodes);
    Ok(report)
}

/// *Atomic* variant of [`apply_pul_with_labeling`]: the application runs
/// inside a journal scope, so a mid-apply failure (an op not applicable after
/// earlier ops, a dynamic error such as a duplicate attribute) rewinds both
/// document and labeling to their exact pre-call state at O(change) cost — no
/// snapshot clone is ever taken. This is what the executor uses on the
/// authoritative copy.
///
/// Journal ownership is scoped: when the caller already holds an active
/// journal (e.g. a [`Transaction`] in the session crate), this function marks
/// and — on failure — rewinds to its own mark, leaving the outer entries
/// intact; when it activated journaling itself, it discards the journal
/// before returning. On success the recorded entry counts are published in
/// [`ApplyReport::journal`].
///
/// The rollback also fires on *unwind*: a panic inside the apply rewinds both
/// stores exactly like an `Err` before propagating, so a session kept alive
/// across `catch_unwind` (a server worker) is never left half-updated with a
/// dangling journal.
pub fn apply_pul_journaled(
    doc: &mut Document,
    labeling: &mut Labeling,
    pul: &Pul,
    opts: &ApplyOptions,
) -> Result<ApplyReport> {
    /// Drop guard: while `armed`, dropping rewinds both stores to the scope's
    /// marks (the `Err` and panic paths); the owned journals are closed either
    /// way.
    struct Rewinder<'a> {
        doc: &'a mut Document,
        labeling: &'a mut Labeling,
        scope: JournalScope,
        armed: bool,
    }

    impl Drop for Rewinder<'_> {
        fn drop(&mut self) {
            if self.armed {
                self.scope.rewind(self.doc, self.labeling);
            }
            self.scope.close(self.doc, self.labeling);
        }
    }

    let scope = JournalScope::open(doc, labeling);
    let mut guard = Rewinder { doc, labeling, scope, armed: true };
    let mut report = apply_pul(&mut *guard.doc, pul, opts)?;
    guard.labeling.patch(&*guard.doc, &report.inserted_roots, &report.removed_nodes);
    report.journal = guard.scope.stats(guard.doc, guard.labeling);
    guard.armed = false;
    Ok(report)
}

/// One journal scope over a document/labeling pair — the single home of the
/// scope protocol shared by [`apply_pul_journaled`] and the session crate's
/// `Transaction`: per-store ownership detection, dual mark-taking, rewind
/// ordering (labeling before document), and close-discards-only-what-this-
/// scope-activated.
#[derive(Debug, Clone, Copy)]
pub struct JournalScope {
    owned_doc: bool,
    owned_labeling: bool,
    doc_mark: xdm::JournalMark,
    label_mark: xdm::JournalMark,
}

impl JournalScope {
    /// Enters (or activates) the journals of both stores and records the
    /// current marks. Ownership is per store: a caller may legitimately hold
    /// only one of the two journals open already.
    pub fn open(doc: &mut Document, labeling: &mut Labeling) -> Self {
        JournalScope {
            owned_doc: !doc.journal_is_active(),
            owned_labeling: !labeling.journal_is_active(),
            doc_mark: doc.journal_mark(),
            label_mark: labeling.journal_mark(),
        }
    }

    /// Undoes everything recorded after the scope opened, labeling first
    /// (label entries never reference document state, so either order is
    /// safe, but one canonical order keeps replays deterministic).
    pub fn rewind(&self, doc: &mut Document, labeling: &mut Labeling) {
        labeling.journal_rewind(self.label_mark);
        doc.journal_rewind(self.doc_mark);
    }

    /// Closes the scope: the journals this scope *activated* are discarded;
    /// journals that were already open stay open for the enclosing scope.
    pub fn close(&self, doc: &mut Document, labeling: &mut Labeling) {
        if self.owned_doc {
            doc.journal_discard();
        }
        if self.owned_labeling {
            labeling.journal_discard();
        }
    }

    /// Entry counts recorded since the scope opened.
    pub fn stats(&self, doc: &Document, labeling: &Labeling) -> JournalStats {
        JournalStats {
            doc_entries: doc.journal_len() - self.doc_mark.position(),
            label_entries: labeling.journal_len() - self.label_mark.position(),
        }
    }
}

/// Grafts a parameter tree into the document (detached) and returns its new root.
fn graft_tree(
    doc: &mut Document,
    tree: &Tree,
    opts: &ApplyOptions,
    report: &mut ApplyReport,
) -> Result<NodeId> {
    let (root, mapping) =
        doc.graft(tree.as_document(), tree.root_id(), opts.preserve_content_ids)?;
    for (old, new) in mapping {
        report.id_map.insert(old, new);
    }
    Ok(root)
}

fn note_insert(report: &mut ApplyReport, root: NodeId) {
    report.inserted_roots.push(root);
}

fn note_removed(report: &mut ApplyReport, root: NodeId, removed_ids: &[NodeId]) {
    report.removed_roots.push(root);
    report.removed_nodes.extend_from_slice(removed_ids);
}

/// Applies a single operation. Operations whose target has already been removed
/// by a previously applied (overriding) operation are silently skipped — the
/// overriding semantics captured by reduction rules O1–O4.
fn apply_one(
    doc: &mut Document,
    op: &UpdateOp,
    opts: &ApplyOptions,
    report: &mut ApplyReport,
) -> Result<()> {
    let target = op.target();
    if !doc.contains(target) {
        // Target removed by an earlier stage (e.g. repN on an ancestor): the
        // operation is overridden and has no effect.
        return Ok(());
    }
    match op {
        UpdateOp::InsInto { content, .. } | UpdateOp::InsFirst { content, .. } => {
            // ins↓ takes the implementation-defined position "first".
            for (i, tree) in content.iter().enumerate() {
                let root = graft_tree(doc, tree, opts, report)?;
                doc.insert_child_at(target, i, root)?;
                note_insert(report, root);
            }
        }
        UpdateOp::InsLast { content, .. } => {
            for tree in content {
                let root = graft_tree(doc, tree, opts, report)?;
                doc.append_child(target, root)?;
                note_insert(report, root);
            }
        }
        UpdateOp::InsBefore { content, .. } => {
            for tree in content {
                let root = graft_tree(doc, tree, opts, report)?;
                doc.insert_before(target, root)?;
                note_insert(report, root);
            }
        }
        UpdateOp::InsAfter { content, .. } => {
            let mut anchor = target;
            for tree in content {
                let root = graft_tree(doc, tree, opts, report)?;
                doc.insert_after(anchor, root)?;
                note_insert(report, root);
                anchor = root;
            }
        }
        UpdateOp::InsAttributes { content, .. } => {
            let mut existing: HashSet<String> = doc
                .attributes(target)?
                .iter()
                .filter_map(|&a| doc.name(a).ok().flatten().map(str::to_owned))
                .collect();
            for tree in content {
                let name = tree.root_name().unwrap_or_default();
                if !existing.insert(name.clone()) {
                    return Err(PulError::Dynamic(format!(
                        "attribute '{name}' inserted twice (or already present) on node {target}"
                    )));
                }
                let root = graft_tree(doc, tree, opts, report)?;
                doc.add_attribute(target, root)?;
                note_insert(report, root);
            }
        }
        UpdateOp::Delete { .. } => {
            let removed = doc.preorder(target);
            doc.remove_subtree(target)?;
            note_removed(report, target, &removed);
        }
        UpdateOp::ReplaceNode { content, .. } => {
            if doc.kind(target)? == NodeKind::Attribute {
                let owner = doc
                    .parent(target)?
                    .ok_or(PulError::Dynamic(format!("attribute {target} has no owner")))?;
                for tree in content {
                    let root = graft_tree(doc, tree, opts, report)?;
                    doc.add_attribute(owner, root)?;
                    note_insert(report, root);
                }
            } else {
                for tree in content {
                    let root = graft_tree(doc, tree, opts, report)?;
                    doc.insert_before(target, root)?;
                    note_insert(report, root);
                }
            }
            let removed = doc.preorder(target);
            doc.remove_subtree(target)?;
            note_removed(report, target, &removed);
        }
        UpdateOp::ReplaceValue { value, .. } => {
            doc.set_value(target, value.clone())?;
        }
        UpdateOp::ReplaceContent { text, .. } => {
            for c in doc.children(target)?.to_vec() {
                let removed = doc.preorder(c);
                doc.remove_subtree(c)?;
                note_removed(report, c, &removed);
            }
            if let Some(t) = text {
                let text_node = doc.new_text(t.clone());
                doc.append_child(target, text_node)?;
                note_insert(report, text_node);
            }
        }
        UpdateOp::Rename { name, .. } => {
            doc.rename(target, name.clone())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdm::parser::parse_document;
    use xdm::writer::write_document;

    fn doc() -> Document {
        // ids: issue=1, volume=2, article=3, title=4, "T"=5, article=6
        parse_document("<issue volume=\"30\"><article><title>T</title></article><article/></issue>")
            .unwrap()
    }

    fn apply(doc: &mut Document, ops: Vec<UpdateOp>) -> ApplyReport {
        let pul: Pul = ops.into_iter().collect();
        apply_pul(doc, &pul, &ApplyOptions::default()).unwrap()
    }

    #[test]
    fn simple_rename_value_delete() {
        let mut d = doc();
        apply(
            &mut d,
            vec![
                UpdateOp::rename(3u64, "paper"),
                UpdateOp::replace_value(5u64, "New title"),
                UpdateOp::delete(6u64),
            ],
        );
        assert_eq!(
            write_document(&d),
            "<issue volume=\"30\"><paper><title>New title</title></paper></issue>"
        );
    }

    #[test]
    fn insertions_in_all_positions() {
        let mut d = doc();
        apply(
            &mut d,
            vec![
                UpdateOp::ins_before(4u64, vec![Tree::element_with_text("year", "2004")]),
                UpdateOp::ins_after(4u64, vec![Tree::element_with_text("month", "March")]),
                UpdateOp::ins_first(6u64, vec![Tree::element("first")]),
                UpdateOp::ins_last(6u64, vec![Tree::element("last")]),
                UpdateOp::ins_attributes(3u64, vec![Tree::attribute("id", "a1")]),
            ],
        );
        assert_eq!(
            write_document(&d),
            "<issue volume=\"30\"><article id=\"a1\"><year>2004</year><title>T</title>\
             <month>March</month></article><article><first/><last/></article></issue>"
        );
    }

    #[test]
    fn insert_after_preserves_tree_order() {
        let mut d = doc();
        apply(
            &mut d,
            vec![UpdateOp::ins_after(
                4u64,
                vec![Tree::element("a"), Tree::element("b"), Tree::element("c")],
            )],
        );
        assert_eq!(
            write_document(&d),
            "<issue volume=\"30\"><article><title>T</title><a/><b/><c/></article><article/></issue>"
        );
    }

    #[test]
    fn ins_into_behaves_as_first_child() {
        let mut d = doc();
        apply(&mut d, vec![UpdateOp::ins_into(3u64, vec![Tree::element("x"), Tree::element("y")])]);
        assert_eq!(
            write_document(&d),
            "<issue volume=\"30\"><article><x/><y/><title>T</title></article><article/></issue>"
        );
    }

    #[test]
    fn replace_node_and_content() {
        let mut d = doc();
        apply(
            &mut d,
            vec![
                UpdateOp::replace_node(4u64, vec![Tree::element_with_text("author", "M.Mesiti")]),
                UpdateOp::replace_content(6u64, Some("empty".into())),
            ],
        );
        assert_eq!(
            write_document(&d),
            "<issue volume=\"30\"><article><author>M.Mesiti</author></article>\
             <article>empty</article></issue>"
        );
    }

    #[test]
    fn replace_attribute_node() {
        let mut d = doc();
        apply(&mut d, vec![UpdateOp::replace_node(2u64, vec![Tree::attribute("number", "3")])]);
        assert_eq!(
            write_document(&d),
            "<issue number=\"3\"><article><title>T</title></article><article/></issue>"
        );
    }

    #[test]
    fn replace_node_with_nothing_deletes() {
        let mut d = doc();
        apply(&mut d, vec![UpdateOp::replace_node(4u64, vec![])]);
        assert_eq!(write_document(&d), "<issue volume=\"30\"><article/><article/></issue>");
    }

    #[test]
    fn deletion_follows_insertions_stage_order() {
        // Inserting siblings of a node that is also deleted: the siblings stay
        // (stage 2 before stage 5).
        let mut d = doc();
        apply(
            &mut d,
            vec![
                UpdateOp::delete(4u64),
                UpdateOp::ins_before(4u64, vec![Tree::element("kept")]),
                UpdateOp::ins_after(4u64, vec![Tree::element("also-kept")]),
            ],
        );
        assert_eq!(
            write_document(&d),
            "<issue volume=\"30\"><article><kept/><also-kept/></article><article/></issue>"
        );
    }

    #[test]
    fn rename_then_replace_is_overridden() {
        // ren and repN on the same node: repN (stage 3) wins over ren (stage 1)
        // because the renamed node is replaced afterwards.
        let mut d = doc();
        apply(
            &mut d,
            vec![
                UpdateOp::rename(4u64, "heading"),
                UpdateOp::replace_node(4u64, vec![Tree::element("replacement")]),
            ],
        );
        assert_eq!(
            write_document(&d),
            "<issue volume=\"30\"><article><replacement/></article><article/></issue>"
        );
    }

    #[test]
    fn ops_on_removed_subtrees_are_skipped() {
        // repN on an ancestor removes the descendant before its own op applies.
        let mut d = doc();
        apply(
            &mut d,
            vec![UpdateOp::replace_node(3u64, vec![Tree::element("gone")]), UpdateOp::delete(5u64)],
        );
        assert_eq!(write_document(&d), "<issue volume=\"30\"><gone/><article/></issue>");
    }

    #[test]
    fn insa_duplicate_is_a_dynamic_error() {
        let mut d = doc();
        let pul: Pul = vec![UpdateOp::ins_attributes(
            3u64,
            vec![Tree::attribute("id", "1"), Tree::attribute("id", "2")],
        )]
        .into_iter()
        .collect();
        let err = apply_pul(&mut d, &pul, &ApplyOptions::default()).unwrap_err();
        assert!(matches!(err, PulError::Dynamic(_)));

        // also when the attribute already exists on the element
        let mut d = doc();
        let pul: Pul = vec![UpdateOp::ins_attributes(1u64, vec![Tree::attribute("volume", "31")])]
            .into_iter()
            .collect();
        assert!(apply_pul(&mut d, &pul, &ApplyOptions::default()).is_err());
    }

    #[test]
    fn validation_rejects_inapplicable_puls() {
        let mut d = doc();
        let pul: Pul = vec![UpdateOp::rename(99u64, "x")].into_iter().collect();
        assert!(apply_pul(&mut d, &pul, &ApplyOptions::default()).is_err());
        // but validation can be turned off, in which case the op is skipped
        let report =
            apply_pul(&mut d, &pul, &ApplyOptions { validate: false, ..Default::default() });
        assert!(report.is_ok());
    }

    #[test]
    fn preserve_content_ids_keeps_tree_identifiers() {
        let mut d = doc();
        let tree =
            xdm::parser::parse_fragment_with_first_id("<article><title>XML</title></article>", 24)
                .unwrap();
        let pul: Pul = vec![UpdateOp::ins_last(1u64, vec![tree])].into_iter().collect();
        let report = apply_pul(&mut d, &pul, &ApplyOptions::producer()).unwrap();
        assert!(d.contains(NodeId::new(24)));
        assert!(d.contains(NodeId::new(25)));
        assert!(d.contains(NodeId::new(26)));
        assert_eq!(report.inserted_roots, vec![NodeId::new(24)]);

        // fresh-id mode must not reuse 24..26 but map them
        let mut d2 = doc();
        let tree2 =
            xdm::parser::parse_fragment_with_first_id("<article><title>XML</title></article>", 24)
                .unwrap();
        let pul2: Pul = vec![UpdateOp::ins_last(1u64, vec![tree2])].into_iter().collect();
        let report2 = apply_pul(&mut d2, &pul2, &ApplyOptions::default()).unwrap();
        assert_eq!(report2.id_map.len(), 3);
        assert!(report2.id_map.contains_key(&NodeId::new(24)));
    }

    #[test]
    fn report_tracks_inserted_and_removed() {
        let mut d = doc();
        let report = apply(
            &mut d,
            vec![UpdateOp::ins_last(3u64, vec![Tree::element("author")]), UpdateOp::delete(6u64)],
        );
        assert_eq!(report.inserted_roots.len(), 1);
        assert_eq!(report.removed_roots, vec![NodeId::new(6)]);
        assert_eq!(report.removed_nodes, vec![NodeId::new(6)]);
    }

    #[test]
    fn report_removed_nodes_cover_subtrees_and_cleared_content() {
        // del(3) removes the whole <article> subtree (3, 4, 5); repC(6) clears
        // nothing (empty element) but repC on 1 would clear everything.
        let mut d = doc();
        let report = apply(&mut d, vec![UpdateOp::delete(3u64)]);
        let mut removed: Vec<u64> = report.removed_nodes.iter().map(|n| n.as_u64()).collect();
        removed.sort_unstable();
        assert_eq!(removed, vec![3, 4, 5]);
        assert_eq!(report.removed_roots, vec![NodeId::new(3)]);

        let mut d = doc();
        let report = apply(&mut d, vec![UpdateOp::replace_content(3u64, Some("gone".into()))]);
        let mut removed: Vec<u64> = report.removed_nodes.iter().map(|n| n.as_u64()).collect();
        removed.sort_unstable();
        assert_eq!(removed, vec![4, 5], "repC records the cleared children");
        assert_eq!(report.inserted_roots.len(), 1, "the replacement text node");
    }

    #[test]
    fn labeling_is_maintained_during_application() {
        let mut d = doc();
        let mut labeling = Labeling::assign(&d);
        let pul: Pul = vec![
            UpdateOp::ins_last(3u64, vec![Tree::element_with_text("author", "G G")]),
            UpdateOp::delete(6u64),
        ]
        .into_iter()
        .collect();
        apply_pul_with_labeling(&mut d, &mut labeling, &pul, &ApplyOptions::default()).unwrap();
        // every node of the updated document has a label and predicates agree
        for n in d.preorder_from_root() {
            assert!(labeling.get(n).is_some(), "node {n} labeled");
        }
        assert!(labeling.get(NodeId::new(6)).is_none(), "removed nodes lose their label");
        let article = NodeId::new(3);
        let new_author = *d.children(article).unwrap().last().unwrap();
        assert!(labeling.is_child(new_author, article));
        assert!(labeling.is_last_child(new_author, article));
    }

    #[test]
    fn journaled_apply_rolls_back_mid_apply_failure() {
        // rename(3) applies first (same stage, smaller target), then the
        // duplicate attribute on 6 fails *after* its first attribute has
        // already been grafted and attached: the journal must undo both the
        // partial op and the completed one.
        let mut d = doc();
        let mut labeling = Labeling::assign(&d);
        let doc_oracle = d.clone();
        let label_oracle = labeling.clone();
        let pul: Pul = vec![
            UpdateOp::rename(3u64, "paper"),
            UpdateOp::ins_attributes(
                6u64,
                vec![Tree::attribute("id", "1"), Tree::attribute("id", "2")],
            ),
        ]
        .into_iter()
        .collect();
        let err = apply_pul_journaled(&mut d, &mut labeling, &pul, &ApplyOptions::default());
        assert!(matches!(err, Err(PulError::Dynamic(_))));
        assert!(d.deep_eq(&doc_oracle), "document rewound to the pre-apply state");
        assert!(labeling.deep_eq(&label_oracle), "labeling rewound to the pre-apply state");
        assert!(!d.journal_is_active(), "owned journal scope closed");
        assert!(!labeling.journal_is_active());
        d.assert_consistent();
        labeling.assert_consistent(&d);
    }

    #[test]
    fn journaled_apply_reports_entry_counts_on_success() {
        let mut d = doc();
        let mut labeling = Labeling::assign(&d);
        let pul: Pul = vec![
            UpdateOp::ins_last(3u64, vec![Tree::element_with_text("author", "G G")]),
            UpdateOp::delete(6u64),
        ]
        .into_iter()
        .collect();
        let report =
            apply_pul_journaled(&mut d, &mut labeling, &pul, &ApplyOptions::default()).unwrap();
        assert!(report.journal.doc_entries > 0, "document mutations recorded");
        assert!(report.journal.label_entries > 0, "label mutations recorded");
        assert!(!d.journal_is_active(), "success discards the owned journal");
        d.assert_consistent();
        labeling.assert_consistent(&d);
    }

    #[test]
    fn journaled_apply_scopes_each_store_independently() {
        // A caller holding only the *document* journal open must not end up
        // with a permanently active labeling journal (and vice versa).
        let mut d = doc();
        let mut labeling = Labeling::assign(&d);
        let mark = d.journal_mark();
        let pul: Pul = vec![UpdateOp::rename(3u64, "paper")].into_iter().collect();
        apply_pul_journaled(&mut d, &mut labeling, &pul, &ApplyOptions::default()).unwrap();
        assert!(d.journal_is_active(), "caller-owned document journal stays open");
        assert!(
            !labeling.journal_is_active(),
            "the labeling journal this call opened must be closed again"
        );
        d.journal_rewind(mark);
        d.journal_discard();
        assert_eq!(d.name(NodeId::new(3)).unwrap(), Some("article"));
    }

    #[test]
    fn example_1_deletion_and_example_semantics() {
        // Example 1: del(14) involves no non-determinism. Here we simply check
        // that deleting a node removes the whole subtree.
        let mut d = doc();
        apply(&mut d, vec![UpdateOp::delete(3u64)]);
        assert_eq!(write_document(&d), "<issue volume=\"30\"><article/></issue>");
        assert!(!d.contains(NodeId::new(4)));
        assert!(!d.contains(NodeId::new(5)));
    }
}
