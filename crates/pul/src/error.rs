//! Error type for PUL construction, validation and evaluation.

use std::fmt;

use xdm::{NodeId, XdmError};

/// Errors raised while validating or evaluating PULs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PulError {
    /// An operation is not applicable on the document (Def. 1): the target is
    /// missing or an applicability condition of Table 2 is violated.
    NotApplicable {
        /// Target of the offending operation.
        target: NodeId,
        /// Human-readable reason.
        reason: String,
    },
    /// Two operations of the PUL are incompatible (Def. 3), so the PUL is not
    /// applicable (Def. 4) and merging is rejected (Def. 5).
    Incompatible {
        /// Common target of the incompatible operations.
        target: NodeId,
        /// Name of the operations (e.g. `ren`).
        op: String,
    },
    /// Dynamic error during evaluation (e.g. inserting twice an attribute with
    /// the same name — the "repetition" error of §3.2).
    Dynamic(String),
    /// Error bubbled up from the document model.
    Xdm(XdmError),
    /// Error while parsing the PUL exchange format.
    Format(String),
    /// The obtainable-document set is too large to enumerate.
    TooManyOutcomes {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for PulError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PulError::NotApplicable { target, reason } => {
                write!(f, "operation on node {target} is not applicable: {reason}")
            }
            PulError::Incompatible { target, op } => {
                write!(f, "incompatible {op} operations on node {target}")
            }
            PulError::Dynamic(msg) => write!(f, "dynamic error: {msg}"),
            PulError::Xdm(e) => write!(f, "document error: {e}"),
            PulError::Format(msg) => write!(f, "PUL format error: {msg}"),
            PulError::TooManyOutcomes { limit } => {
                write!(f, "obtainable-document set exceeds the limit of {limit} documents")
            }
        }
    }
}

impl std::error::Error for PulError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PulError::Xdm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XdmError> for PulError {
    fn from(e: XdmError) -> Self {
        PulError::Xdm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PulError::NotApplicable {
            target: NodeId::new(4),
            reason: "target is a text node".into(),
        };
        assert!(e.to_string().contains("node 4"));
        let e = PulError::Incompatible { target: NodeId::new(1), op: "ren".into() };
        assert!(e.to_string().contains("ren"));
        let e: PulError = XdmError::NoRoot.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(PulError::Dynamic("boom".into()).to_string().contains("boom"));
        assert!(PulError::TooManyOutcomes { limit: 10 }.to_string().contains("10"));
    }
}
