//! The obtainable-document set `O(∆, D)`, PUL equivalence and substitutability.
//!
//! The semantics of a PUL is non-deterministic (Def. 2 and §2.2): `ins↓` leaves
//! the insertion position implementation-defined, and when several insertion
//! operations of the same type target the same node the relative order of
//! their inserted groups is not fixed. This module *enumerates* the set of
//! documents obtainable by a PUL, which is the semantic ground truth used to
//! validate the reasoning operators:
//!
//! * `∆1 ≃D ∆2` (**equivalence**, Def. 6) ⇔ `O(∆1, D) = O(∆2, D)`;
//! * `∆1 ⊑D ∆2` (**substitutability**, Def. 6) ⇔ `O(∆1, D) ⊆ O(∆2, D)`.
//!
//! Documents are compared structurally and *identifier-agnostically* (and with
//! attribute order ignored, since the relative order of attributes is not
//! significant): two obtainable documents are the same element of the set if
//! their canonical serializations coincide.
//!
//! Enumeration is exponential in the number of non-deterministic choices and is
//! meant for testing and for reasoning on small PULs, not for production
//! evaluation — that is what [`crate::apply`] and [`crate::stream`] are for.

use std::collections::{BTreeSet, HashMap};

use xdm::{Document, NodeId, NodeKind};

use crate::apply::{apply_pul, ApplyOptions};
use crate::error::PulError;
use crate::op::OpName;
use crate::pul::Pul;
use crate::Result;

/// Default cap on the number of enumerated outcomes.
pub const DEFAULT_OUTCOME_LIMIT: usize = 4096;

/// The set of documents obtainable by applying a PUL to a document.
#[derive(Debug, Clone)]
pub struct ObtainableSet {
    /// One representative document per distinct outcome.
    docs: Vec<Document>,
    /// Canonical serializations of the outcomes (the set itself).
    canonical: BTreeSet<String>,
}

impl ObtainableSet {
    /// Number of distinct obtainable documents.
    pub fn len(&self) -> usize {
        self.canonical.len()
    }

    /// Whether the set is empty (only possible for inapplicable PULs).
    pub fn is_empty(&self) -> bool {
        self.canonical.is_empty()
    }

    /// The canonical serializations of the obtainable documents.
    pub fn canonical(&self) -> &BTreeSet<String> {
        &self.canonical
    }

    /// Representative documents (one per canonical form).
    pub fn documents(&self) -> &[Document] {
        &self.docs
    }

    /// Set equality (used for equivalence).
    pub fn same_as(&self, other: &ObtainableSet) -> bool {
        self.canonical == other.canonical
    }

    /// Set inclusion (used for substitutability).
    pub fn subset_of(&self, other: &ObtainableSet) -> bool {
        self.canonical.is_subset(&other.canonical)
    }
}

/// Canonical, identifier-agnostic serialization of a document: attributes are
/// sorted by `(name, value)` so that the irrelevant attribute order does not
/// distinguish outcomes.
pub fn canonical_string(doc: &Document) -> String {
    fn rec(doc: &Document, id: NodeId, out: &mut String) {
        let Ok(data) = doc.node(id) else { return };
        match data.kind {
            NodeKind::Text => {
                out.push_str("t(");
                out.push_str(data.value.as_deref().unwrap_or(""));
                out.push(')');
            }
            NodeKind::Attribute => {
                out.push_str("a(");
                out.push_str(data.name.as_deref().unwrap_or(""));
                out.push('=');
                out.push_str(data.value.as_deref().unwrap_or(""));
                out.push(')');
            }
            NodeKind::Element => {
                out.push_str("e(");
                out.push_str(data.name.as_deref().unwrap_or(""));
                let mut attrs: Vec<(String, String)> = data
                    .attributes
                    .iter()
                    .filter_map(|&a| {
                        let ad = doc.node(a).ok()?;
                        Some((
                            ad.name.clone().unwrap_or_default(),
                            ad.value.clone().unwrap_or_default(),
                        ))
                    })
                    .collect();
                attrs.sort();
                for (n, v) in attrs {
                    out.push_str("[@");
                    out.push_str(&n);
                    out.push('=');
                    out.push_str(&v);
                    out.push(']');
                }
                for &c in &data.children {
                    rec(doc, c, out);
                }
                out.push(')');
            }
        }
    }
    let mut out = String::new();
    if let Some(r) = doc.root() {
        rec(doc, r, &mut out);
    }
    out
}

/// One complete assignment of the non-deterministic choices of a PUL.
#[derive(Debug, Clone, Default)]
struct Choice {
    /// Chosen insertion index for each `ins↓` operation (keyed by op index).
    into_positions: HashMap<usize, usize>,
    /// Chosen application order (op indices) for each group of same-type,
    /// same-target insertions.
    group_orders: Vec<Vec<usize>>,
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            let mut v = vec![x];
            v.append(&mut p);
            out.push(v);
        }
    }
    out
}

/// Enumerates the obtainable documents `O(∆, D)`.
pub fn obtainable_documents(doc: &Document, pul: &Pul, limit: usize) -> Result<ObtainableSet> {
    pul.check_applicable(doc)?;

    // 1. Non-deterministic choice points.
    let ops = pul.ops();
    // ins↓ positions: 0..=|children(target)| in the original document.
    let mut into_ops: Vec<(usize, usize)> = Vec::new(); // (op index, #positions)
    for (i, op) in ops.iter().enumerate() {
        if op.name() == OpName::InsInto {
            let n = doc.children(op.target()).map(|c| c.len()).unwrap_or(0);
            into_ops.push((i, n + 1));
        }
    }
    // groups of same-type same-target insertions (order of groups not fixed).
    let mut groups: HashMap<(OpName, NodeId), Vec<usize>> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        if matches!(
            op.name(),
            OpName::InsBefore
                | OpName::InsAfter
                | OpName::InsFirst
                | OpName::InsLast
                | OpName::InsInto
        ) {
            groups.entry((op.name(), op.target())).or_default().push(i);
        }
    }
    let multi_groups: Vec<Vec<usize>> = groups.into_values().filter(|g| g.len() > 1).collect();

    // 2. Cartesian product of all choices.
    let mut choices: Vec<Choice> = vec![Choice::default()];
    for (op_idx, n_positions) in &into_ops {
        let mut next = Vec::new();
        for c in &choices {
            for p in 0..*n_positions {
                let mut c2 = c.clone();
                c2.into_positions.insert(*op_idx, p);
                next.push(c2);
            }
            if next.len() > limit {
                return Err(PulError::TooManyOutcomes { limit });
            }
        }
        choices = next;
    }
    for group in &multi_groups {
        let perms = permutations(group);
        let mut next = Vec::new();
        for c in &choices {
            for p in &perms {
                let mut c2 = c.clone();
                c2.group_orders.push(p.clone());
                next.push(c2);
            }
            if next.len() > limit {
                return Err(PulError::TooManyOutcomes { limit });
            }
        }
        choices = next;
    }
    if choices.len() > limit {
        return Err(PulError::TooManyOutcomes { limit });
    }

    // 3. Apply the PUL once per choice.
    let mut canonical = BTreeSet::new();
    let mut docs = Vec::new();
    for choice in &choices {
        let outcome = apply_with_choice(doc, pul, choice)?;
        let key = canonical_string(&outcome);
        if canonical.insert(key) {
            docs.push(outcome);
        }
    }
    Ok(ObtainableSet { docs, canonical })
}

/// Applies the PUL with explicit non-deterministic choices. `ins↓` operations
/// are rewritten into positional insertions and the within-group application
/// order follows the choice instead of the canonical order.
fn apply_with_choice(doc: &Document, pul: &Pul, choice: &Choice) -> Result<Document> {
    let mut work = doc.clone();

    // Order of application: stage, then (for ops in a chosen group order) the
    // position within the chosen permutation, then the canonical order.
    let ops = pul.ops();
    let mut rank: HashMap<usize, usize> = HashMap::new();
    for order in &choice.group_orders {
        for (pos, &op_idx) in order.iter().enumerate() {
            rank.insert(op_idx, pos);
        }
    }
    let mut indices: Vec<usize> = (0..ops.len()).collect();
    indices.sort_by(|&a, &b| {
        let oa = &ops[a];
        let ob = &ops[b];
        (
            oa.stage(),
            oa.target(),
            oa.name().code(),
            rank.get(&a).copied().unwrap_or(0),
            oa.param_sort_key(),
        )
            .cmp(&(
                ob.stage(),
                ob.target(),
                ob.name().code(),
                rank.get(&b).copied().unwrap_or(0),
                ob.param_sort_key(),
            ))
    });

    // Record, for every ins↓ target, the sibling node currently at the chosen
    // position (or None = append at end); positions refer to the original
    // child list, per Def. 2 ("differ only for the position of the inserted
    // children among sibling nodes").
    let mut into_anchor: HashMap<usize, Option<NodeId>> = HashMap::new();
    for (&op_idx, &pos) in &choice.into_positions {
        let target = ops[op_idx].target();
        let children = work.children(target)?;
        into_anchor.insert(op_idx, children.get(pos).copied());
    }

    for &i in &indices {
        let op = &ops[i];
        // Rewrite ins↓ into a positional insertion according to the choice.
        if op.name() == OpName::InsInto {
            let target = op.target();
            if !work.contains(target) {
                continue;
            }
            let content = op.content().unwrap_or(&[]);
            let anchor = into_anchor.get(&i).copied().flatten();
            match anchor {
                Some(anchor) if work.contains(anchor) => {
                    // insert the trees immediately before the anchor sibling
                    for tree in content {
                        let (root, _) = work.graft(tree.as_document(), tree.root_id(), false)?;
                        work.insert_before(anchor, root)?;
                    }
                }
                _ => {
                    for tree in content {
                        let (root, _) = work.graft(tree.as_document(), tree.root_id(), false)?;
                        work.append_child(target, root)?;
                    }
                }
            }
            continue;
        }
        // All other operations: reuse the deterministic single-op applier.
        let single: Pul = std::iter::once(op.clone()).collect();
        apply_pul(
            &mut work,
            &single,
            &ApplyOptions { validate: false, preserve_content_ids: false },
        )?;
    }
    Ok(work)
}

/// `∆1 ≃D ∆2` — PUL equivalence on `doc` (Def. 6).
pub fn equivalent(doc: &Document, p1: &Pul, p2: &Pul, limit: usize) -> Result<bool> {
    let o1 = obtainable_documents(doc, p1, limit)?;
    let o2 = obtainable_documents(doc, p2, limit)?;
    Ok(o1.same_as(&o2))
}

/// `∆1 ⊑D ∆2` — PUL substitutability on `doc` (Def. 6): `O(∆1, D) ⊆ O(∆2, D)`.
pub fn substitutable(doc: &Document, p1: &Pul, p2: &Pul, limit: usize) -> Result<bool> {
    let o1 = obtainable_documents(doc, p1, limit)?;
    let o2 = obtainable_documents(doc, p2, limit)?;
    Ok(o1.subset_of(&o2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::UpdateOp;
    use xdm::parser::parse_document;
    use xdm::Tree;

    /// The SigmodRecord fragment of Figure 1 (simplified but with the same
    /// shape): two papers, the second with two authors.
    fn figure1() -> Document {
        parse_document(
            "<SigmodRecord><issue><volume>30</volume><number>3</number>\
             <paper><title>ABC</title><initPage>1</initPage><authors>\
             <author>A One</author></authors></paper>\
             <paper><title>DEF</title><authors><author>B One</author>\
             <author>B Two</author></authors></paper></issue></SigmodRecord>",
        )
        .unwrap()
    }

    #[test]
    fn deterministic_pul_has_singleton_outcome() {
        // Example 1: del involves no non-determinism.
        let d = figure1();
        let target = d.find_elements("paper")[0];
        let pul: Pul = vec![UpdateOp::delete(target)].into_iter().collect();
        let o = obtainable_documents(&d, &pul, DEFAULT_OUTCOME_LIMIT).unwrap();
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn ins_into_enumerates_positions() {
        // Example 1 (op2): inserting an author into an element with 2 children
        // may lead to 3 documents.
        let d = figure1();
        let authors = d.find_elements("authors")[1];
        assert_eq!(d.children(authors).unwrap().len(), 2);
        let pul: Pul = vec![UpdateOp::ins_into(
            authors,
            vec![Tree::element_with_text("author", "G.Guerrini")],
        )]
        .into_iter()
        .collect();
        let o = obtainable_documents(&d, &pul, DEFAULT_OUTCOME_LIMIT).unwrap();
        assert_eq!(o.len(), 3);
    }

    #[test]
    fn example_3_cardinality_six() {
        // Example 3: one ins↓ into an element with two children (3 positions)
        // and two ins↘ on the same node (2 orders) → 6 obtainable documents.
        let d = figure1();
        let authors = d.find_elements("authors")[1];
        let paper1 = d.find_elements("paper")[0];
        let pul: Pul = vec![
            UpdateOp::ins_into(authors, vec![Tree::element_with_text("author", "G.Guerrini")]),
            UpdateOp::ins_last(paper1, vec![Tree::element_with_text("initP", "132")]),
            UpdateOp::ins_last(paper1, vec![Tree::element_with_text("lastP", "134")]),
        ]
        .into_iter()
        .collect();
        let o = obtainable_documents(&d, &pul, DEFAULT_OUTCOME_LIMIT).unwrap();
        assert_eq!(o.len(), 6);
    }

    #[test]
    fn example_4_equivalence() {
        // ∆1 = {ins→(text-of-title, author), repV(text, 'Report on ...')} vs
        // ∆2 = {ins↘(title-parent …)} — we reproduce the paper's pattern on our
        // fixture: inserting after the last author of paper2 is equivalent to
        // inserting as last child of its <authors>; replacing the value of the
        // title text node is equivalent to replacing the title's content.
        let d = figure1();
        let paper2_title = d.find_elements("title")[1];
        let title_text = d.children(paper2_title).unwrap()[0];
        let authors2 = d.find_elements("authors")[1];
        let last_author = *d.children(authors2).unwrap().last().unwrap();

        let p1: Pul = vec![
            UpdateOp::ins_after(last_author, vec![Tree::element_with_text("author", "M.Mesiti")]),
            UpdateOp::replace_value(title_text, "Report on ..."),
        ]
        .into_iter()
        .collect();
        let p2: Pul = vec![
            UpdateOp::ins_last(authors2, vec![Tree::element_with_text("author", "M.Mesiti")]),
            UpdateOp::replace_content(paper2_title, Some("Report on ...".into())),
        ]
        .into_iter()
        .collect();
        assert!(equivalent(&d, &p1, &p2, DEFAULT_OUTCOME_LIMIT).unwrap());
        assert!(substitutable(&d, &p1, &p2, DEFAULT_OUTCOME_LIMIT).unwrap());
    }

    #[test]
    fn example_4_substitutability() {
        // ∆1 = {ins↘(4, initP), ins↘(4, lastP)} (two separate ops → 2 outcomes)
        // ∆2 = {ins↘(4, initP, lastP)} (one op, fixed order → 1 outcome)
        // ∆2 is substitutable to ∆1 but not vice versa.
        let d = figure1();
        let paper1 = d.find_elements("paper")[0];
        let p1: Pul = vec![
            UpdateOp::ins_last(paper1, vec![Tree::element_with_text("initP", "132")]),
            UpdateOp::ins_last(paper1, vec![Tree::element_with_text("lastP", "134")]),
        ]
        .into_iter()
        .collect();
        let p2: Pul = vec![UpdateOp::ins_last(
            paper1,
            vec![Tree::element_with_text("initP", "132"), Tree::element_with_text("lastP", "134")],
        )]
        .into_iter()
        .collect();
        assert!(substitutable(&d, &p2, &p1, DEFAULT_OUTCOME_LIMIT).unwrap());
        assert!(!substitutable(&d, &p1, &p2, DEFAULT_OUTCOME_LIMIT).unwrap());
        assert!(!equivalent(&d, &p1, &p2, DEFAULT_OUTCOME_LIMIT).unwrap());
        let o1 = obtainable_documents(&d, &p1, DEFAULT_OUTCOME_LIMIT).unwrap();
        assert_eq!(o1.len(), 2);
    }

    #[test]
    fn deterministic_apply_result_is_in_the_obtainable_set() {
        let d = figure1();
        let authors = d.find_elements("authors")[1];
        let paper1 = d.find_elements("paper")[0];
        let pul: Pul = vec![
            UpdateOp::ins_into(authors, vec![Tree::element_with_text("author", "X")]),
            UpdateOp::ins_last(paper1, vec![Tree::element_with_text("a", "1")]),
            UpdateOp::ins_last(paper1, vec![Tree::element_with_text("b", "2")]),
            UpdateOp::rename(paper1, "article"),
        ]
        .into_iter()
        .collect();
        let o = obtainable_documents(&d, &pul, DEFAULT_OUTCOME_LIMIT).unwrap();
        let mut det = d.clone();
        apply_pul(&mut det, &pul, &ApplyOptions::default()).unwrap();
        assert!(
            o.canonical().contains(&canonical_string(&det)),
            "the deterministic outcome must be one of the obtainable documents"
        );
    }

    #[test]
    fn limit_is_enforced() {
        let d = figure1();
        let authors = d.find_elements("authors")[1];
        let ops: Vec<UpdateOp> = (0..6)
            .map(|i| {
                UpdateOp::ins_into(
                    authors,
                    vec![Tree::element_with_text("author", format!("A{i}"))],
                )
            })
            .collect();
        let pul: Pul = ops.into_iter().collect();
        assert!(matches!(
            obtainable_documents(&d, &pul, 50),
            Err(PulError::TooManyOutcomes { limit: 50 })
        ));
    }

    #[test]
    fn canonical_string_ignores_attribute_order_and_ids() {
        let d1 = parse_document("<a x=\"1\" y=\"2\"><b>t</b></a>").unwrap();
        let d2 = parse_document_with_offset("<a y=\"2\" x=\"1\"><b>t</b></a>", 100);
        assert_eq!(canonical_string(&d1), canonical_string(&d2));
        let d3 = parse_document("<a x=\"1\" y=\"3\"><b>t</b></a>").unwrap();
        assert_ne!(canonical_string(&d1), canonical_string(&d3));
    }

    fn parse_document_with_offset(xml: &str, first: u64) -> Document {
        xdm::parser::parse_document_with_first_id(xml, first).unwrap()
    }

    #[test]
    fn inapplicable_pul_is_rejected() {
        let d = figure1();
        let pul: Pul = vec![UpdateOp::rename(9999u64, "x")].into_iter().collect();
        assert!(obtainable_documents(&d, &pul, 10).is_err());
    }
}
