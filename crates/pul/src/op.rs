//! The update primitives of Table 2.
//!
//! Each operation has a *target* node `t(op)`, a *name* `o(op)` ([`OpName`]),
//! a *class* `c(op)` ([`OpClass`]) and — except for `del` — a second parameter
//! `p(op)` (a list of trees, a value or a name). Applicability conditions
//! follow Table 2 and Definition 1.

use std::fmt;

use xdm::{Document, NodeId, NodeKind, Tree};

use crate::error::PulError;
use crate::Result;

/// `o(op)` — the name of an update primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpName {
    /// `ins←` — insert trees before the target.
    InsBefore,
    /// `ins→` — insert trees after the target.
    InsAfter,
    /// `ins↙` — insert trees as first children of the target.
    InsFirst,
    /// `ins↘` — insert trees as last children of the target.
    InsLast,
    /// `ins↓` — insert trees as children of the target, in an
    /// implementation-defined position (the source of non-determinism).
    InsInto,
    /// `insA` — insert trees as attributes of the target.
    InsAttributes,
    /// `del` — delete the target.
    Delete,
    /// `repN` — replace the target with trees (possibly none).
    ReplaceNode,
    /// `repV` — replace the value of the target.
    ReplaceValue,
    /// `repC` — replace the children of the target with a text node or nothing.
    ReplaceContent,
    /// `ren` — rename the target.
    Rename,
}

impl OpName {
    /// All operation names, in a fixed order.
    pub const ALL: [OpName; 11] = [
        OpName::InsBefore,
        OpName::InsAfter,
        OpName::InsFirst,
        OpName::InsLast,
        OpName::InsInto,
        OpName::InsAttributes,
        OpName::Delete,
        OpName::ReplaceNode,
        OpName::ReplaceValue,
        OpName::ReplaceContent,
        OpName::Rename,
    ];

    /// ASCII identifier used by the PUL exchange format.
    pub fn code(self) -> &'static str {
        match self {
            OpName::InsBefore => "insBefore",
            OpName::InsAfter => "insAfter",
            OpName::InsFirst => "insFirst",
            OpName::InsLast => "insLast",
            OpName::InsInto => "insInto",
            OpName::InsAttributes => "insAttributes",
            OpName::Delete => "delete",
            OpName::ReplaceNode => "replaceNode",
            OpName::ReplaceValue => "replaceValue",
            OpName::ReplaceContent => "replaceContent",
            OpName::Rename => "rename",
        }
    }

    /// Parses the ASCII identifier back.
    pub fn from_code(code: &str) -> Option<Self> {
        OpName::ALL.into_iter().find(|n| n.code() == code)
    }

    /// The notation used by the paper (e.g. `ins→`, `repN`).
    pub fn paper_notation(self) -> &'static str {
        match self {
            OpName::InsBefore => "ins←",
            OpName::InsAfter => "ins→",
            OpName::InsFirst => "ins↙",
            OpName::InsLast => "ins↘",
            OpName::InsInto => "ins↓",
            OpName::InsAttributes => "insA",
            OpName::Delete => "del",
            OpName::ReplaceNode => "repN",
            OpName::ReplaceValue => "repV",
            OpName::ReplaceContent => "repC",
            OpName::Rename => "ren",
        }
    }

    /// `c(op)` — the class of the operation.
    pub fn class(self) -> OpClass {
        match self {
            OpName::InsBefore
            | OpName::InsAfter
            | OpName::InsFirst
            | OpName::InsLast
            | OpName::InsInto
            | OpName::InsAttributes => OpClass::Insertion,
            OpName::Delete => OpClass::Deletion,
            OpName::ReplaceNode
            | OpName::ReplaceValue
            | OpName::ReplaceContent
            | OpName::Rename => OpClass::Replacement,
        }
    }

    /// The stage (1–5) in which the operation is applied by `applyUpdates`
    /// (§2.2): (1) `ins↓, insA, repV, ren`; (2) `ins←, ins→, ins↙, ins↘`;
    /// (3) `repN`; (4) `repC`; (5) `del`.
    pub fn stage(self) -> u8 {
        match self {
            OpName::InsInto | OpName::InsAttributes | OpName::ReplaceValue | OpName::Rename => 1,
            OpName::InsBefore | OpName::InsAfter | OpName::InsFirst | OpName::InsLast => 2,
            OpName::ReplaceNode => 3,
            OpName::ReplaceContent => 4,
            OpName::Delete => 5,
        }
    }
}

impl fmt::Display for OpName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.paper_notation())
    }
}

/// `c(op)` — the class of an operation: insertion (`i`), deletion (`d`) or
/// replacement (`r`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Insertions (all `ins` variants).
    Insertion,
    /// Deletion (`del`).
    Deletion,
    /// Replacements (`repN`, `repV`, `repC`, `ren`).
    Replacement,
}

impl OpClass {
    /// Single-letter code of the class as used by the paper.
    pub fn code(self) -> char {
        match self {
            OpClass::Insertion => 'i',
            OpClass::Deletion => 'd',
            OpClass::Replacement => 'r',
        }
    }
}

/// An update primitive of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// `ins←(v, P)` — insert the trees in `P` before node `v`.
    InsBefore {
        /// Target node `v`.
        target: NodeId,
        /// Trees to insert.
        content: Vec<Tree>,
    },
    /// `ins→(v, P)` — insert the trees in `P` after node `v`.
    InsAfter {
        /// Target node `v`.
        target: NodeId,
        /// Trees to insert.
        content: Vec<Tree>,
    },
    /// `ins↙(v, P)` — insert the trees in `P` as first children of `v`.
    InsFirst {
        /// Target node `v`.
        target: NodeId,
        /// Trees to insert.
        content: Vec<Tree>,
    },
    /// `ins↘(v, P)` — insert the trees in `P` as last children of `v`.
    InsLast {
        /// Target node `v`.
        target: NodeId,
        /// Trees to insert.
        content: Vec<Tree>,
    },
    /// `ins↓(v, P)` — insert the trees in `P` as children of `v`, in an
    /// implementation-defined position.
    InsInto {
        /// Target node `v`.
        target: NodeId,
        /// Trees to insert.
        content: Vec<Tree>,
    },
    /// `insA(v, P)` — insert the trees in `P` as attributes of `v`.
    InsAttributes {
        /// Target node `v`.
        target: NodeId,
        /// Attribute trees to insert.
        content: Vec<Tree>,
    },
    /// `del(v)` — delete node `v`.
    Delete {
        /// Target node `v`.
        target: NodeId,
    },
    /// `repN(v, P)` — replace node `v` with the trees in `P` (possibly none).
    ReplaceNode {
        /// Target node `v`.
        target: NodeId,
        /// Replacement trees (empty list allowed).
        content: Vec<Tree>,
    },
    /// `repV(v, s)` — replace the value of node `v` with `s`.
    ReplaceValue {
        /// Target node `v`.
        target: NodeId,
        /// New value.
        value: String,
    },
    /// `repC(v, t)` — replace the children of node `v` with text `t` or nothing.
    ReplaceContent {
        /// Target node `v`.
        target: NodeId,
        /// New textual content (`None` empties the element).
        text: Option<String>,
    },
    /// `ren(v, l)` — rename node `v` to `l`.
    Rename {
        /// Target node `v`.
        target: NodeId,
        /// New name.
        name: String,
    },
}

impl UpdateOp {
    // ------------------------------------------------------------------
    // constructors
    // ------------------------------------------------------------------

    /// Builds an `ins←` operation.
    pub fn ins_before(target: impl Into<NodeId>, content: Vec<Tree>) -> Self {
        UpdateOp::InsBefore { target: target.into(), content }
    }

    /// Builds an `ins→` operation.
    pub fn ins_after(target: impl Into<NodeId>, content: Vec<Tree>) -> Self {
        UpdateOp::InsAfter { target: target.into(), content }
    }

    /// Builds an `ins↙` operation.
    pub fn ins_first(target: impl Into<NodeId>, content: Vec<Tree>) -> Self {
        UpdateOp::InsFirst { target: target.into(), content }
    }

    /// Builds an `ins↘` operation.
    pub fn ins_last(target: impl Into<NodeId>, content: Vec<Tree>) -> Self {
        UpdateOp::InsLast { target: target.into(), content }
    }

    /// Builds an `ins↓` operation.
    pub fn ins_into(target: impl Into<NodeId>, content: Vec<Tree>) -> Self {
        UpdateOp::InsInto { target: target.into(), content }
    }

    /// Builds an `insA` operation.
    pub fn ins_attributes(target: impl Into<NodeId>, content: Vec<Tree>) -> Self {
        UpdateOp::InsAttributes { target: target.into(), content }
    }

    /// Builds a `del` operation.
    pub fn delete(target: impl Into<NodeId>) -> Self {
        UpdateOp::Delete { target: target.into() }
    }

    /// Builds a `repN` operation.
    pub fn replace_node(target: impl Into<NodeId>, content: Vec<Tree>) -> Self {
        UpdateOp::ReplaceNode { target: target.into(), content }
    }

    /// Builds a `repV` operation.
    pub fn replace_value(target: impl Into<NodeId>, value: impl Into<String>) -> Self {
        UpdateOp::ReplaceValue { target: target.into(), value: value.into() }
    }

    /// Builds a `repC` operation.
    pub fn replace_content(target: impl Into<NodeId>, text: Option<String>) -> Self {
        UpdateOp::ReplaceContent { target: target.into(), text }
    }

    /// Builds a `ren` operation.
    pub fn rename(target: impl Into<NodeId>, name: impl Into<String>) -> Self {
        UpdateOp::Rename { target: target.into(), name: name.into() }
    }

    // ------------------------------------------------------------------
    // accessors
    // ------------------------------------------------------------------

    /// `t(op)` — the target of the operation.
    pub fn target(&self) -> NodeId {
        match self {
            UpdateOp::InsBefore { target, .. }
            | UpdateOp::InsAfter { target, .. }
            | UpdateOp::InsFirst { target, .. }
            | UpdateOp::InsLast { target, .. }
            | UpdateOp::InsInto { target, .. }
            | UpdateOp::InsAttributes { target, .. }
            | UpdateOp::Delete { target }
            | UpdateOp::ReplaceNode { target, .. }
            | UpdateOp::ReplaceValue { target, .. }
            | UpdateOp::ReplaceContent { target, .. }
            | UpdateOp::Rename { target, .. } => *target,
        }
    }

    /// Rewrites the target of the operation (used by reasoning algorithms when
    /// relocating operations, e.g. aggregation rule D6).
    pub fn set_target(&mut self, new_target: NodeId) {
        match self {
            UpdateOp::InsBefore { target, .. }
            | UpdateOp::InsAfter { target, .. }
            | UpdateOp::InsFirst { target, .. }
            | UpdateOp::InsLast { target, .. }
            | UpdateOp::InsInto { target, .. }
            | UpdateOp::InsAttributes { target, .. }
            | UpdateOp::Delete { target }
            | UpdateOp::ReplaceNode { target, .. }
            | UpdateOp::ReplaceValue { target, .. }
            | UpdateOp::ReplaceContent { target, .. }
            | UpdateOp::Rename { target, .. } => *target = new_target,
        }
    }

    /// `o(op)` — the name of the operation.
    pub fn name(&self) -> OpName {
        match self {
            UpdateOp::InsBefore { .. } => OpName::InsBefore,
            UpdateOp::InsAfter { .. } => OpName::InsAfter,
            UpdateOp::InsFirst { .. } => OpName::InsFirst,
            UpdateOp::InsLast { .. } => OpName::InsLast,
            UpdateOp::InsInto { .. } => OpName::InsInto,
            UpdateOp::InsAttributes { .. } => OpName::InsAttributes,
            UpdateOp::Delete { .. } => OpName::Delete,
            UpdateOp::ReplaceNode { .. } => OpName::ReplaceNode,
            UpdateOp::ReplaceValue { .. } => OpName::ReplaceValue,
            UpdateOp::ReplaceContent { .. } => OpName::ReplaceContent,
            UpdateOp::Rename { .. } => OpName::Rename,
        }
    }

    /// `c(op)` — the class of the operation.
    pub fn class(&self) -> OpClass {
        self.name().class()
    }

    /// The application stage (1–5) of the operation.
    pub fn stage(&self) -> u8 {
        self.name().stage()
    }

    /// The tree-list parameter of the operation, when it has one.
    pub fn content(&self) -> Option<&[Tree]> {
        match self {
            UpdateOp::InsBefore { content, .. }
            | UpdateOp::InsAfter { content, .. }
            | UpdateOp::InsFirst { content, .. }
            | UpdateOp::InsLast { content, .. }
            | UpdateOp::InsInto { content, .. }
            | UpdateOp::InsAttributes { content, .. }
            | UpdateOp::ReplaceNode { content, .. } => Some(content),
            _ => None,
        }
    }

    /// Mutable access to the tree-list parameter.
    pub fn content_mut(&mut self) -> Option<&mut Vec<Tree>> {
        match self {
            UpdateOp::InsBefore { content, .. }
            | UpdateOp::InsAfter { content, .. }
            | UpdateOp::InsFirst { content, .. }
            | UpdateOp::InsLast { content, .. }
            | UpdateOp::InsInto { content, .. }
            | UpdateOp::InsAttributes { content, .. }
            | UpdateOp::ReplaceNode { content, .. } => Some(content),
            _ => None,
        }
    }

    /// A textual serialization of `p(op)` used for the lexicographic ordering
    /// `<lex` of the canonical form (Def. 9). `del` has no parameter and
    /// serializes to the empty string.
    pub fn param_sort_key(&self) -> String {
        match self {
            UpdateOp::Delete { .. } => String::new(),
            UpdateOp::ReplaceValue { value, .. } => value.clone(),
            UpdateOp::Rename { name, .. } => name.clone(),
            UpdateOp::ReplaceContent { text, .. } => text.clone().unwrap_or_default(),
            _ => self
                .content()
                .map(|trees| trees.iter().map(|t| t.to_string()).collect::<Vec<_>>().join("\u{1}"))
                .unwrap_or_default(),
        }
    }

    /// Whether the operation belongs to the set of insertions that add
    /// *children* to their target (`ins↙`, `ins↘`, `ins↓`).
    pub fn inserts_children(&self) -> bool {
        matches!(self.name(), OpName::InsFirst | OpName::InsLast | OpName::InsInto)
    }

    /// Whether the operation inserts *siblings* of its target (`ins←`, `ins→`).
    pub fn inserts_siblings(&self) -> bool {
        matches!(self.name(), OpName::InsBefore | OpName::InsAfter)
    }

    // ------------------------------------------------------------------
    // compatibility and applicability
    // ------------------------------------------------------------------

    /// Operation compatibility (Def. 3): two operations are compatible unless
    /// they have the same target, the same name and are replacements.
    pub fn is_compatible_with(&self, other: &UpdateOp) -> bool {
        !(self.target() == other.target()
            && self.name() == other.name()
            && self.class() == OpClass::Replacement)
    }

    fn err(&self, reason: impl Into<String>) -> PulError {
        PulError::NotApplicable { target: self.target(), reason: reason.into() }
    }

    /// Checks the applicability conditions of Table 2 against a document
    /// (Def. 1): the target must belong to the document and the side
    /// conditions on node kinds must hold.
    pub fn check_applicable(&self, doc: &Document) -> Result<()> {
        let target = self.target();
        if !doc.contains(target) {
            return Err(self.err("target node does not belong to the document"));
        }
        let tkind = doc.kind(target)?;
        let roots_not_attribute = |content: &[Tree]| -> Result<()> {
            if content.iter().any(|t| t.root_kind() == NodeKind::Attribute) {
                Err(self.err("inserted tree roots must not be attribute nodes"))
            } else {
                Ok(())
            }
        };
        match self {
            UpdateOp::InsBefore { content, .. } | UpdateOp::InsAfter { content, .. } => {
                if tkind == NodeKind::Attribute {
                    return Err(self.err("target of a sibling insertion cannot be an attribute"));
                }
                if doc.parent(target)?.is_none() {
                    return Err(self.err("target of a sibling insertion must have a parent"));
                }
                if content.is_empty() {
                    return Err(self.err("insertion requires at least one tree"));
                }
                roots_not_attribute(content)
            }
            UpdateOp::InsFirst { content, .. }
            | UpdateOp::InsLast { content, .. }
            | UpdateOp::InsInto { content, .. } => {
                if tkind != NodeKind::Element {
                    return Err(self.err("target of a child insertion must be an element"));
                }
                if content.is_empty() {
                    return Err(self.err("insertion requires at least one tree"));
                }
                roots_not_attribute(content)
            }
            UpdateOp::InsAttributes { content, .. } => {
                if tkind != NodeKind::Element {
                    return Err(self.err("target of an attribute insertion must be an element"));
                }
                if content.is_empty() {
                    return Err(self.err("insertion requires at least one tree"));
                }
                if content.iter().any(|t| t.root_kind() != NodeKind::Attribute) {
                    return Err(self.err("insA requires attribute trees"));
                }
                Ok(())
            }
            UpdateOp::Delete { .. } => Ok(()),
            UpdateOp::ReplaceNode { content, .. } => {
                if doc.parent(target)?.is_none() {
                    return Err(self.err("the replaced node must have a parent"));
                }
                for t in content {
                    let rk = t.root_kind();
                    let ok = (rk == NodeKind::Attribute && tkind == NodeKind::Attribute)
                        || (rk != NodeKind::Attribute && tkind != NodeKind::Attribute);
                    if !ok {
                        return Err(self.err(
                            "replacement trees must be attributes iff the replaced node is an attribute",
                        ));
                    }
                }
                Ok(())
            }
            UpdateOp::ReplaceValue { .. } => {
                if matches!(tkind, NodeKind::Text | NodeKind::Attribute) {
                    Ok(())
                } else {
                    Err(self.err("repV applies to text and attribute nodes only"))
                }
            }
            UpdateOp::ReplaceContent { .. } => {
                if tkind == NodeKind::Element {
                    Ok(())
                } else {
                    Err(self.err("repC applies to element nodes only"))
                }
            }
            UpdateOp::Rename { name, .. } => {
                if name.is_empty() {
                    return Err(self.err("the new name must not be empty"));
                }
                if matches!(tkind, NodeKind::Element | NodeKind::Attribute) {
                    Ok(())
                } else {
                    Err(self.err("ren applies to element and attribute nodes only"))
                }
            }
        }
    }
}

impl fmt::Display for UpdateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = self.name().paper_notation();
        let target = self.target();
        match self {
            UpdateOp::Delete { .. } => write!(f, "{name}({target})"),
            UpdateOp::ReplaceValue { value, .. } => write!(f, "{name}({target}, '{value}')"),
            UpdateOp::Rename { name: n, .. } => write!(f, "{name}({target}, {n})"),
            UpdateOp::ReplaceContent { text, .. } => match text {
                Some(t) => write!(f, "{name}({target}, '{t}')"),
                None => write!(f, "{name}({target}, [])"),
            },
            _ => {
                let trees = self
                    .content()
                    .map(|c| c.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", "))
                    .unwrap_or_default();
                write!(f, "{name}({target}, {trees})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdm::parser::parse_document;

    fn doc() -> Document {
        // ids: issue=1, volume=2, article=3, title=4, "T"=5, article=6
        parse_document("<issue volume=\"30\"><article><title>T</title></article><article/></issue>")
            .unwrap()
    }

    #[test]
    fn accessors_and_metadata() {
        let op = UpdateOp::ins_after(3u64, vec![Tree::element("x")]);
        assert_eq!(op.target(), NodeId::new(3));
        assert_eq!(op.name(), OpName::InsAfter);
        assert_eq!(op.class(), OpClass::Insertion);
        assert_eq!(op.stage(), 2);
        assert!(op.inserts_siblings());
        assert!(!op.inserts_children());
        assert_eq!(op.content().unwrap().len(), 1);

        let op = UpdateOp::delete(4u64);
        assert_eq!(op.class(), OpClass::Deletion);
        assert_eq!(op.stage(), 5);
        assert!(op.content().is_none());
        assert_eq!(op.param_sort_key(), "");

        let op = UpdateOp::rename(1u64, "dblp");
        assert_eq!(op.class(), OpClass::Replacement);
        assert_eq!(op.stage(), 1);
        assert_eq!(op.param_sort_key(), "dblp");
    }

    #[test]
    fn op_name_codes_roundtrip() {
        for n in OpName::ALL {
            assert_eq!(OpName::from_code(n.code()), Some(n));
        }
        assert_eq!(OpName::from_code("bogus"), None);
    }

    #[test]
    fn stages_match_the_paper() {
        assert_eq!(OpName::InsInto.stage(), 1);
        assert_eq!(OpName::InsAttributes.stage(), 1);
        assert_eq!(OpName::ReplaceValue.stage(), 1);
        assert_eq!(OpName::Rename.stage(), 1);
        assert_eq!(OpName::InsBefore.stage(), 2);
        assert_eq!(OpName::InsAfter.stage(), 2);
        assert_eq!(OpName::InsFirst.stage(), 2);
        assert_eq!(OpName::InsLast.stage(), 2);
        assert_eq!(OpName::ReplaceNode.stage(), 3);
        assert_eq!(OpName::ReplaceContent.stage(), 4);
        assert_eq!(OpName::Delete.stage(), 5);
    }

    #[test]
    fn compatibility_example_2() {
        // Example 2 of the paper: op1 = ren(1, dblp), op2 = ren(1, myDblp),
        // op3 = repC(1, 'nopapers'): op1/op3 compatible, op2/op3 compatible,
        // op1/op2 incompatible.
        let op1 = UpdateOp::rename(1u64, "dblp");
        let op2 = UpdateOp::rename(1u64, "myDblp");
        let op3 = UpdateOp::replace_content(1u64, Some("nopapers".into()));
        assert!(op1.is_compatible_with(&op3));
        assert!(op2.is_compatible_with(&op3));
        assert!(!op1.is_compatible_with(&op2));
        assert!(!op2.is_compatible_with(&op1));
    }

    #[test]
    fn insertions_with_same_target_are_compatible() {
        let op1 = UpdateOp::ins_last(4u64, vec![Tree::element("a")]);
        let op2 = UpdateOp::ins_last(4u64, vec![Tree::element("b")]);
        assert!(op1.is_compatible_with(&op2));
        let d1 = UpdateOp::delete(4u64);
        let d2 = UpdateOp::delete(4u64);
        assert!(d1.is_compatible_with(&d2), "two deletions are compatible");
    }

    #[test]
    fn table2_applicability_insert_siblings() {
        let d = doc();
        // ok on an element with a parent
        assert!(UpdateOp::ins_after(3u64, vec![Tree::element("x")]).check_applicable(&d).is_ok());
        // not on attributes
        assert!(UpdateOp::ins_after(2u64, vec![Tree::element("x")]).check_applicable(&d).is_err());
        // not on the root (no parent)
        assert!(UpdateOp::ins_before(1u64, vec![Tree::element("x")]).check_applicable(&d).is_err());
        // attribute content rejected
        assert!(UpdateOp::ins_after(3u64, vec![Tree::attribute("k", "v")])
            .check_applicable(&d)
            .is_err());
        // empty content rejected
        assert!(UpdateOp::ins_after(3u64, vec![]).check_applicable(&d).is_err());
        // missing target
        assert!(UpdateOp::ins_after(99u64, vec![Tree::element("x")]).check_applicable(&d).is_err());
    }

    #[test]
    fn table2_applicability_insert_children_and_attributes() {
        let d = doc();
        assert!(UpdateOp::ins_first(3u64, vec![Tree::element("x")]).check_applicable(&d).is_ok());
        assert!(UpdateOp::ins_last(3u64, vec![Tree::element("x")]).check_applicable(&d).is_ok());
        assert!(UpdateOp::ins_into(3u64, vec![Tree::element("x")]).check_applicable(&d).is_ok());
        // children insertions require an element target
        assert!(UpdateOp::ins_first(5u64, vec![Tree::element("x")]).check_applicable(&d).is_err());
        assert!(UpdateOp::ins_last(2u64, vec![Tree::element("x")]).check_applicable(&d).is_err());
        // insA requires attribute trees and an element target
        assert!(UpdateOp::ins_attributes(3u64, vec![Tree::attribute("k", "v")])
            .check_applicable(&d)
            .is_ok());
        assert!(UpdateOp::ins_attributes(3u64, vec![Tree::element("x")])
            .check_applicable(&d)
            .is_err());
        assert!(UpdateOp::ins_attributes(5u64, vec![Tree::attribute("k", "v")])
            .check_applicable(&d)
            .is_err());
    }

    #[test]
    fn table2_applicability_replace_and_rename() {
        let d = doc();
        // repN of an element with element trees
        assert!(UpdateOp::replace_node(4u64, vec![Tree::element("x")])
            .check_applicable(&d)
            .is_ok());
        // repN of an element with an attribute tree is rejected
        assert!(UpdateOp::replace_node(4u64, vec![Tree::attribute("k", "v")])
            .check_applicable(&d)
            .is_err());
        // repN of an attribute with an attribute tree is fine
        assert!(UpdateOp::replace_node(2u64, vec![Tree::attribute("k", "v")])
            .check_applicable(&d)
            .is_ok());
        // repN with an empty list is allowed (it is equivalent to del)
        assert!(UpdateOp::replace_node(4u64, vec![]).check_applicable(&d).is_ok());
        // repN of the root is rejected (no parent)
        assert!(UpdateOp::replace_node(1u64, vec![Tree::element("x")])
            .check_applicable(&d)
            .is_err());
        // repV on text and attributes only
        assert!(UpdateOp::replace_value(5u64, "X").check_applicable(&d).is_ok());
        assert!(UpdateOp::replace_value(2u64, "31").check_applicable(&d).is_ok());
        assert!(UpdateOp::replace_value(3u64, "X").check_applicable(&d).is_err());
        // repC on elements only
        assert!(UpdateOp::replace_content(3u64, Some("x".into())).check_applicable(&d).is_ok());
        assert!(UpdateOp::replace_content(3u64, None).check_applicable(&d).is_ok());
        assert!(UpdateOp::replace_content(5u64, Some("x".into())).check_applicable(&d).is_err());
        // ren on elements and attributes only, with a non-empty name
        assert!(UpdateOp::rename(3u64, "paper").check_applicable(&d).is_ok());
        assert!(UpdateOp::rename(2u64, "vol").check_applicable(&d).is_ok());
        assert!(UpdateOp::rename(5u64, "x").check_applicable(&d).is_err());
        assert!(UpdateOp::rename(3u64, "").check_applicable(&d).is_err());
        // del always applicable on existing nodes
        assert!(UpdateOp::delete(5u64).check_applicable(&d).is_ok());
        assert!(UpdateOp::delete(99u64).check_applicable(&d).is_err());
    }

    #[test]
    fn display_uses_paper_notation() {
        let op = UpdateOp::ins_after(7u64, vec![Tree::element_with_text("author", "G G")]);
        assert_eq!(op.to_string(), "ins→(7, <author>G G</author>)");
        assert_eq!(UpdateOp::delete(14u64).to_string(), "del(14)");
        assert_eq!(UpdateOp::rename(5u64, "title").to_string(), "ren(5, title)");
        assert_eq!(UpdateOp::replace_value(15u64, "R").to_string(), "repV(15, 'R')");
        assert_eq!(UpdateOp::replace_content(1u64, None).to_string(), "repC(1, [])");
    }

    #[test]
    fn set_target_rewrites_target() {
        let mut op = UpdateOp::rename(5u64, "x");
        op.set_target(NodeId::new(9));
        assert_eq!(op.target(), NodeId::new(9));
    }

    #[test]
    fn param_sort_key_orders_lexicographically() {
        let a = UpdateOp::ins_after(7u64, vec![Tree::element_with_text("a", "A C")]);
        let b = UpdateOp::ins_after(7u64, vec![Tree::element_with_text("a", "G G")]);
        assert!(a.param_sort_key() < b.param_sort_key());
    }
}
