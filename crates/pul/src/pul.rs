//! The Pending Update List container.

use std::collections::HashMap;
use std::fmt;

use xdm::{Document, NodeId};
use xlabel::{Labeling, NodeLabel};

use crate::error::PulError;
use crate::op::UpdateOp;
use crate::Result;

/// A **Pending Update List**: an unordered list of update operations (§2.2),
/// together with the labels of the target nodes.
///
/// The labels make the PUL self-contained: the reasoning operators (reduction,
/// integration, aggregation) evaluate the structural predicates of Table 1
/// directly on the labels carried by the PUL, without ever accessing the
/// document (§2.1, §4.1). Operations targeting nodes that are *not* part of the
/// original document (e.g. nodes inserted by a previous PUL of a sequence) may
/// legitimately have no label.
#[derive(Debug, Clone, Default)]
pub struct Pul {
    ops: Vec<UpdateOp>,
    labels: HashMap<NodeId, NodeLabel>,
}

impl Pul {
    /// Creates an empty PUL.
    pub fn new() -> Self {
        Pul { ops: Vec::new(), labels: HashMap::new() }
    }

    /// Creates an empty PUL with room for `n` operations.
    pub fn with_capacity(n: usize) -> Self {
        Pul { ops: Vec::with_capacity(n), labels: HashMap::with_capacity(n) }
    }

    /// Builds a PUL from a list of operations, attaching the labels of the
    /// operation targets found in `labeling`.
    pub fn from_ops(ops: Vec<UpdateOp>, labeling: &Labeling) -> Self {
        let mut pul = Pul { ops, labels: HashMap::new() };
        pul.attach_labels(labeling);
        pul
    }

    /// Adds an operation (without label information).
    pub fn push(&mut self, op: UpdateOp) {
        self.ops.push(op);
    }

    /// Adds an operation together with the label of its target.
    pub fn push_with_label(&mut self, op: UpdateOp, label: NodeLabel) {
        self.labels.insert(label.id, label);
        self.ops.push(op);
    }

    /// Records the label of a node (typically an operation target).
    pub fn add_label(&mut self, label: NodeLabel) {
        self.labels.insert(label.id, label);
    }

    /// Attaches, for every operation target, the label found in `labeling`
    /// (targets unknown to the labeling are skipped).
    pub fn attach_labels(&mut self, labeling: &Labeling) {
        for op in &self.ops {
            if let Some(l) = labeling.get(op.target()) {
                self.labels.insert(op.target(), l.clone());
            }
        }
    }

    /// The operations of the PUL.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Mutable access to the operations.
    pub fn ops_mut(&mut self) -> &mut Vec<UpdateOp> {
        &mut self.ops
    }

    /// Consumes the PUL, returning its operations.
    pub fn into_ops(self) -> Vec<UpdateOp> {
        self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the PUL contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates over the operations.
    pub fn iter(&self) -> impl Iterator<Item = &UpdateOp> {
        self.ops.iter()
    }

    /// The label of a node, if the PUL carries one.
    pub fn label(&self, id: NodeId) -> Option<&NodeLabel> {
        self.labels.get(&id)
    }

    /// All labels carried by the PUL.
    pub fn labels(&self) -> &HashMap<NodeId, NodeLabel> {
        &self.labels
    }

    /// The distinct targets of the operations, in insertion order.
    pub fn targets(&self) -> Vec<NodeId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for op in &self.ops {
            if seen.insert(op.target()) {
                out.push(op.target());
            }
        }
        out
    }

    /// Groups the operation indices by target node.
    pub fn ops_by_target(&self) -> HashMap<NodeId, Vec<usize>> {
        let mut map: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for (i, op) in self.ops.iter().enumerate() {
            map.entry(op.target()).or_default().push(i);
        }
        map
    }

    // ------------------------------------------------------------------
    // Definitions 3–5
    // ------------------------------------------------------------------

    /// Checks that all pairs of operations are compatible (Def. 3). This is the
    /// structural half of PUL applicability (Def. 4).
    pub fn check_compatible(&self) -> Result<()> {
        // Incompatibility only arises between replacement operations with the
        // same name and target, so grouping by (target, name) is sufficient.
        let mut seen: HashMap<(NodeId, crate::op::OpName), usize> = HashMap::new();
        for op in &self.ops {
            if op.class() == crate::op::OpClass::Replacement {
                let key = (op.target(), op.name());
                if seen.contains_key(&key) {
                    return Err(PulError::Incompatible {
                        target: op.target(),
                        op: op.name().paper_notation().to_string(),
                    });
                }
                seen.insert(key, 1);
            }
        }
        Ok(())
    }

    /// PUL applicability on a document (Def. 4): every operation is applicable
    /// (Def. 1) and all pairs of operations are compatible (Def. 3).
    pub fn check_applicable(&self, doc: &Document) -> Result<()> {
        for op in &self.ops {
            op.check_applicable(doc)?;
        }
        self.check_compatible()
    }

    /// Splits the PUL into `groups` sub-PULs, assigning every operation to the
    /// group chosen by `route` (its return value is clamped to the last
    /// group). Operation order is preserved within each group, and every
    /// sub-PUL carries the labels of its own operation targets — each half
    /// stays a self-contained PUL the reasoning operators can work on.
    ///
    /// This is the decomposition step of the sharded executor: a PUL whose
    /// targets span several label intervals is split here, and each sub-PUL is
    /// reduced/integrated/reconciled by its shard independently.
    pub fn split_by_target(
        &self,
        groups: usize,
        mut route: impl FnMut(&UpdateOp) -> usize,
    ) -> Vec<Pul> {
        assert!(groups > 0, "cannot split a PUL into zero groups");
        let mut out: Vec<Pul> = (0..groups).map(|_| Pul::new()).collect();
        for op in &self.ops {
            let g = route(op).min(groups - 1);
            if let Some(label) = self.labels.get(&op.target()) {
                out[g].labels.insert(label.id, label.clone());
            }
            out[g].ops.push(op.clone());
        }
        out
    }

    /// The W3C `mergeUpdates` operation (Def. 5): the union of the two PULs,
    /// provided the union contains no incompatible operations. When a document
    /// is supplied the full applicability check (Def. 4) is performed.
    pub fn merge(&self, other: &Pul, doc: Option<&Document>) -> Result<Pul> {
        let mut merged = self.clone();
        merged.ops.extend(other.ops.iter().cloned());
        for l in other.labels.values() {
            merged.labels.insert(l.id, l.clone());
        }
        match doc {
            Some(d) => merged.check_applicable(d)?,
            None => merged.check_compatible()?,
        }
        Ok(merged)
    }

    /// N-way `mergeUpdates` (Def. 5 folded over a batch): the union of every
    /// PUL in the slice, with ops in slice order and one compatibility check
    /// over the final union — a single pass instead of the quadratic clone
    /// chain that folding [`merge`](Pul::merge) pairwise would cost. Used by
    /// the ingestion pipeline to validate that a coalesced batch of
    /// independent PULs really is one well-formed PUL.
    pub fn merge_all<'a>(puls: impl IntoIterator<Item = &'a Pul>) -> Result<Pul> {
        let mut merged = Pul::new();
        for pul in puls {
            merged.ops.extend(pul.ops.iter().cloned());
            for l in pul.labels.values() {
                merged.labels.insert(l.id, l.clone());
            }
        }
        merged.check_compatible()?;
        Ok(merged)
    }
}

impl fmt::Display for Pul {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<UpdateOp> for Pul {
    fn from_iter<T: IntoIterator<Item = UpdateOp>>(iter: T) -> Self {
        Pul { ops: iter.into_iter().collect(), labels: HashMap::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::UpdateOp;
    use xdm::parser::parse_document;
    use xdm::Tree;

    fn doc() -> Document {
        // ids: issue=1, volume=2, article=3, title=4, "T"=5, article=6
        parse_document("<issue volume=\"30\"><article><title>T</title></article><article/></issue>")
            .unwrap()
    }

    #[test]
    fn push_len_iter_targets() {
        let mut pul = Pul::new();
        assert!(pul.is_empty());
        pul.push(UpdateOp::delete(5u64));
        pul.push(UpdateOp::rename(3u64, "paper"));
        pul.push(UpdateOp::replace_value(5u64, "X"));
        assert_eq!(pul.len(), 3);
        assert_eq!(pul.targets(), vec![NodeId::new(5), NodeId::new(3)]);
        let by_target = pul.ops_by_target();
        assert_eq!(by_target[&NodeId::new(5)].len(), 2);
        assert_eq!(pul.iter().count(), 3);
    }

    #[test]
    fn labels_are_attached_from_a_labeling() {
        let d = doc();
        let labeling = Labeling::assign(&d);
        let ops = vec![UpdateOp::rename(3u64, "paper"), UpdateOp::delete(5u64)];
        let pul = Pul::from_ops(ops, &labeling);
        assert!(pul.label(NodeId::new(3)).is_some());
        assert!(pul.label(NodeId::new(5)).is_some());
        assert!(pul.label(NodeId::new(4)).is_none(), "non-target nodes carry no label");
        assert_eq!(pul.labels().len(), 2);
    }

    #[test]
    fn compatibility_detects_double_replacements() {
        let mut pul = Pul::new();
        pul.push(UpdateOp::rename(1u64, "dblp"));
        pul.push(UpdateOp::replace_content(1u64, Some("nopapers".into())));
        assert!(pul.check_compatible().is_ok());
        pul.push(UpdateOp::rename(1u64, "myDblp"));
        let err = pul.check_compatible().unwrap_err();
        assert!(matches!(err, PulError::Incompatible { .. }));
    }

    #[test]
    fn applicability_requires_each_op_applicable() {
        let d = doc();
        let mut pul = Pul::new();
        pul.push(UpdateOp::rename(3u64, "paper"));
        pul.push(UpdateOp::replace_value(99u64, "X"));
        assert!(matches!(pul.check_applicable(&d), Err(PulError::NotApplicable { .. })));
    }

    #[test]
    fn merge_follows_definition_5() {
        let d = doc();
        let mut p1 = Pul::new();
        p1.push(UpdateOp::rename(3u64, "paper"));
        let mut p2 = Pul::new();
        p2.push(UpdateOp::ins_last(3u64, vec![Tree::element("author")]));
        let merged = p1.merge(&p2, Some(&d)).unwrap();
        assert_eq!(merged.len(), 2);

        // incompatible union is rejected
        let mut p3 = Pul::new();
        p3.push(UpdateOp::rename(3u64, "other"));
        assert!(p1.merge(&p3, Some(&d)).is_err());
        assert!(p1.merge(&p3, None).is_err());
    }

    #[test]
    fn merge_all_unions_a_batch_in_one_pass() {
        let d = doc();
        let labeling = Labeling::assign(&d);
        let p1 = Pul::from_ops(vec![UpdateOp::rename(3u64, "paper")], &labeling);
        let p2 = Pul::from_ops(vec![UpdateOp::replace_value(5u64, "X")], &labeling);
        let p3 = Pul::from_ops(vec![UpdateOp::delete(6u64)], &labeling);
        let merged = Pul::merge_all(&[p1.clone(), p2.clone(), p3]).unwrap();
        assert_eq!(merged.len(), 3);
        // ops keep slice order, labels are unioned
        assert_eq!(merged.ops()[0].name(), crate::op::OpName::Rename);
        assert_eq!(merged.ops()[2].name(), crate::op::OpName::Delete);
        assert!(merged.label(NodeId::new(3)).is_some());
        assert!(merged.label(NodeId::new(6)).is_some());
        // an incompatible union is rejected (two renames of the same node)
        let p4 = Pul::from_ops(vec![UpdateOp::rename(3u64, "other")], &labeling);
        assert!(Pul::merge_all(&[p1, p2, p4]).is_err());
        // the empty batch merges into the empty PUL
        assert!(Pul::merge_all(std::iter::empty()).unwrap().is_empty());
    }

    #[test]
    fn split_by_target_preserves_order_and_labels() {
        let d = doc();
        let labeling = Labeling::assign(&d);
        let pul = Pul::from_ops(
            vec![
                UpdateOp::rename(3u64, "paper"),
                UpdateOp::replace_value(5u64, "X"),
                UpdateOp::delete(6u64),
                UpdateOp::ins_last(3u64, vec![Tree::element("author")]),
            ],
            &labeling,
        );
        // even targets to group 0, odd to group 1
        let parts = pul.split_by_target(2, |op| (op.target().as_u64() % 2) as usize);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].targets(), vec![NodeId::new(6)]);
        assert_eq!(parts[1].targets(), vec![NodeId::new(3), NodeId::new(5)]);
        // within-group operation order is the original order
        assert_eq!(parts[1].ops()[0].name(), crate::op::OpName::Rename);
        assert_eq!(parts[1].ops()[2].name(), crate::op::OpName::InsLast);
        // each half carries exactly its own target labels
        assert!(parts[1].label(NodeId::new(3)).is_some());
        assert!(parts[1].label(NodeId::new(6)).is_none());
        assert!(parts[0].label(NodeId::new(6)).is_some());
        // out-of-range routes clamp to the last group
        let clamped = pul.split_by_target(2, |_| 99);
        assert_eq!(clamped[1].len(), 4);
        assert!(clamped[0].is_empty());
    }

    #[test]
    fn display_lists_ops() {
        let mut pul = Pul::new();
        pul.push(UpdateOp::delete(14u64));
        pul.push(UpdateOp::rename(5u64, "title"));
        assert_eq!(pul.to_string(), "{del(14), ren(5, title)}");
    }

    #[test]
    fn from_iterator_collects_ops() {
        let pul: Pul = vec![UpdateOp::delete(1u64), UpdateOp::delete(2u64)].into_iter().collect();
        assert_eq!(pul.len(), 2);
    }
}
