//! Streaming PUL evaluation (§4.3).
//!
//! The streaming evaluator applies a PUL while scanning the *identified*
//! serialization of a document: the input is parsed into SAX events, the
//! events are transformed on the fly according to the operations of the PUL,
//! and the result is serialized immediately. No in-memory representation of
//! the document is ever built, which decouples memory consumption from the
//! document size — the property evaluated in Figure 6.a of the paper.
//!
//! The evaluator reproduces the same deterministic choices as
//! [`crate::apply`], so that for a given PUL the streamed output is
//! structurally identical to the in-memory output.

use std::collections::{HashMap, HashSet};

use xdm::events::{AttrEvent, Event, EventReader, EventWriter};
use xdm::{NodeId, NodeKind, Tree};

use crate::error::PulError;
use crate::op::UpdateOp;
use crate::pul::Pul;
use crate::Result;

/// Per-target digest of the operations of a PUL, pre-computed so that each
/// event lookup is O(1).
#[derive(Debug, Default, Clone)]
struct TargetOps {
    before: Vec<Tree>,
    after: Vec<Tree>,
    first: Vec<Tree>,
    last: Vec<Tree>,
    attrs: Vec<Tree>,
    delete: bool,
    replace_node: Option<Vec<Tree>>,
    replace_value: Option<String>,
    replace_content: Option<Option<String>>,
    rename: Option<String>,
}

impl TargetOps {
    fn removes_target(&self) -> bool {
        self.delete || self.replace_node.is_some()
    }
}

/// Builds the per-target digests, mirroring the application order of the
/// deterministic in-memory evaluator (stage, then name, then parameters).
fn index_ops(pul: &Pul) -> Result<HashMap<NodeId, TargetOps>> {
    pul.check_compatible()?;
    let mut ordered: Vec<&UpdateOp> = pul.ops().iter().collect();
    ordered.sort_by(|a, b| {
        (a.stage(), a.target(), a.name().code(), a.param_sort_key()).cmp(&(
            b.stage(),
            b.target(),
            b.name().code(),
            b.param_sort_key(),
        ))
    });
    let mut map: HashMap<NodeId, TargetOps> = HashMap::new();
    for op in ordered {
        let entry = map.entry(op.target()).or_default();
        match op {
            UpdateOp::InsBefore { content, .. } => {
                // applied in order, each group inserted right before the target:
                // groups end up in application order.
                entry.before.extend(content.iter().cloned());
            }
            UpdateOp::InsAfter { content, .. } => {
                // each group inserted right after the target: later groups end
                // up closer to the target, i.e. groups in reverse order.
                let mut group: Vec<Tree> = content.clone();
                group.append(&mut entry.after);
                entry.after = group;
            }
            UpdateOp::InsFirst { content, .. } | UpdateOp::InsInto { content, .. } => {
                // inserted at the front: later groups push earlier ones right.
                let mut group: Vec<Tree> = content.clone();
                group.append(&mut entry.first);
                entry.first = group;
            }
            UpdateOp::InsLast { content, .. } => {
                entry.last.extend(content.iter().cloned());
            }
            UpdateOp::InsAttributes { content, .. } => {
                entry.attrs.extend(content.iter().cloned());
            }
            UpdateOp::Delete { .. } => entry.delete = true,
            UpdateOp::ReplaceNode { content, .. } => entry.replace_node = Some(content.clone()),
            UpdateOp::ReplaceValue { value, .. } => entry.replace_value = Some(value.clone()),
            UpdateOp::ReplaceContent { text, .. } => entry.replace_content = Some(text.clone()),
            UpdateOp::Rename { name, .. } => entry.rename = Some(name.clone()),
        }
    }
    Ok(map)
}

/// Identifier generator for the nodes created by the streamed application.
///
/// With `preserve` set, the identifiers carried by the parameter trees are
/// reused (the producer-side identification model of §4.1); otherwise fresh
/// executor-assigned identifiers are generated.
struct IdGen {
    next: u64,
    preserve: bool,
}

impl IdGen {
    fn fresh(&mut self) -> NodeId {
        let id = NodeId::new(self.next);
        self.next += 1;
        id
    }

    fn for_node(&mut self, original: NodeId) -> NodeId {
        if self.preserve {
            original
        } else {
            self.fresh()
        }
    }
}

/// Emits the events of a parameter tree.
fn emit_tree(tree: &Tree, writer: &mut EventWriter, ids: &mut IdGen) {
    fn rec(tree: &Tree, node: NodeId, writer: &mut EventWriter, ids: &mut IdGen) {
        let Ok(data) = tree.node(node) else { return };
        match data.kind {
            NodeKind::Text => {
                writer.write(&Event::Text {
                    id: ids.for_node(node),
                    value: data.value.clone().unwrap_or_default(),
                });
            }
            NodeKind::Attribute => { /* attribute trees are handled by the caller */ }
            NodeKind::Element => {
                let id = ids.for_node(node);
                let attributes: Vec<AttrEvent> = data
                    .attributes
                    .iter()
                    .filter_map(|&a| {
                        let ad = tree.node(a).ok()?;
                        Some(AttrEvent {
                            id: ids.for_node(a),
                            name: ad.name.clone().unwrap_or_default(),
                            value: ad.value.clone().unwrap_or_default(),
                        })
                    })
                    .collect();
                let name = data.name.clone().unwrap_or_default();
                writer.write(&Event::StartElement { id, name: name.clone(), attributes });
                for &c in &data.children {
                    rec(tree, c, writer, ids);
                }
                writer.write(&Event::EndElement { id, name });
            }
        }
    }
    rec(tree, tree.root_id(), writer, ids);
}

fn emit_trees(trees: &[Tree], writer: &mut EventWriter, ids: &mut IdGen) {
    for t in trees {
        emit_tree(t, writer, ids);
    }
}

/// An open element currently being emitted.
struct Frame {
    id: NodeId,
    name: String,
    last: Vec<Tree>,
    after: Vec<Tree>,
    drop_children: bool,
}

/// Applies a PUL to the identified serialization of a document, producing the
/// identified serialization of the updated document. `first_new_id` is the
/// first identifier assigned to nodes created by the application (it must be
/// larger than every identifier appearing in the input).
pub fn apply_streaming(input: &str, pul: &Pul, first_new_id: u64) -> Result<String> {
    apply_streaming_with(input, pul, first_new_id, false)
}

/// Like [`apply_streaming`], but when `preserve_content_ids` is set the nodes
/// created by the application keep the identifiers carried by the parameter
/// trees of the PUL (the producer-side identification model of §4.1, required
/// when later PULs of a sequence refer to nodes inserted by earlier ones).
/// Fresh identifiers (from `first_new_id`) are still used for nodes that have
/// no identifier of their own, e.g. the text node created by `repC`.
pub fn apply_streaming_with(
    input: &str,
    pul: &Pul,
    first_new_id: u64,
    preserve_content_ids: bool,
) -> Result<String> {
    let ops = index_ops(pul)?;
    let mut ids = IdGen { next: first_new_id, preserve: preserve_content_ids };
    let mut writer = EventWriter::identified();
    let mut frames: Vec<Frame> = Vec::new();
    // When skipping a deleted/replaced subtree: remaining depth and the ins→
    // content to emit once the subtree is over.
    let mut skip: Option<(usize, Vec<Tree>)> = None;

    let mut reader = EventReader::identified(input);
    while let Some(event) = reader.next_event().map_err(PulError::from)? {
        // 1. Inside a skipped subtree?
        if let Some((depth, after)) = &mut skip {
            match &event {
                Event::StartElement { .. } => *depth += 1,
                Event::EndElement { .. } => {
                    *depth -= 1;
                    if *depth == 0 {
                        let after = std::mem::take(after);
                        emit_trees(&after, &mut writer, &mut ids);
                        skip = None;
                    }
                }
                Event::Text { .. } => {}
            }
            continue;
        }
        // 2. Children dropped by a repC on the enclosing element?
        let dropping = frames.last().map(|f| f.drop_children).unwrap_or(false);
        match event {
            Event::StartElement { id, name, attributes } => {
                if dropping {
                    // the whole child subtree is overridden by repC
                    skip = Some((1, Vec::new()));
                    continue;
                }
                let t = ops.get(&id).cloned().unwrap_or_default();
                emit_trees(&t.before, &mut writer, &mut ids);
                if t.removes_target() {
                    if let Some(replacement) = &t.replace_node {
                        emit_trees(replacement, &mut writer, &mut ids);
                    }
                    skip = Some((1, t.after.clone()));
                    continue;
                }
                // resolve attributes: per-attribute operations + insA
                let mut out_attrs: Vec<AttrEvent> = Vec::new();
                for a in &attributes {
                    let aops = ops.get(&a.id).cloned().unwrap_or_default();
                    if aops.delete {
                        continue;
                    }
                    if let Some(replacement) = &aops.replace_node {
                        for tree in replacement {
                            if tree.root_kind() == NodeKind::Attribute {
                                out_attrs.push(AttrEvent {
                                    id: ids.for_node(tree.root_id()),
                                    name: tree.root_name().unwrap_or_default(),
                                    value: tree
                                        .value(tree.root_id())
                                        .ok()
                                        .flatten()
                                        .unwrap_or("")
                                        .to_string(),
                                });
                            }
                        }
                        continue;
                    }
                    let mut name = a.name.clone();
                    let mut value = a.value.clone();
                    if let Some(n) = &aops.rename {
                        name = n.clone();
                    }
                    if let Some(v) = &aops.replace_value {
                        value = v.clone();
                    }
                    out_attrs.push(AttrEvent { id: a.id, name, value });
                }
                let mut names: HashSet<String> = out_attrs.iter().map(|a| a.name.clone()).collect();
                for tree in &t.attrs {
                    let aname = tree.root_name().unwrap_or_default();
                    if !names.insert(aname.clone()) {
                        return Err(PulError::Dynamic(format!(
                            "attribute '{aname}' inserted twice (or already present) on node {id}"
                        )));
                    }
                    out_attrs.push(AttrEvent {
                        id: ids.for_node(tree.root_id()),
                        name: aname,
                        value: tree.value(tree.root_id()).ok().flatten().unwrap_or("").to_string(),
                    });
                }
                let resolved_name = t.rename.clone().unwrap_or(name);
                writer.write(&Event::StartElement {
                    id,
                    name: resolved_name.clone(),
                    attributes: out_attrs,
                });
                let drop_children = t.replace_content.is_some();
                if let Some(text) = t.replace_content.clone().flatten() {
                    writer.write(&Event::Text { id: ids.fresh(), value: text });
                }
                if !drop_children {
                    emit_trees(&t.first, &mut writer, &mut ids);
                }
                frames.push(Frame {
                    id,
                    name: resolved_name,
                    last: if drop_children { Vec::new() } else { t.last },
                    after: t.after,
                    drop_children,
                });
            }
            Event::Text { id, value } => {
                if dropping {
                    continue;
                }
                let t = ops.get(&id).cloned().unwrap_or_default();
                emit_trees(&t.before, &mut writer, &mut ids);
                if t.delete {
                    // deleted text: nothing to emit
                } else if let Some(replacement) = &t.replace_node {
                    emit_trees(replacement, &mut writer, &mut ids);
                } else if let Some(v) = &t.replace_value {
                    writer.write(&Event::Text { id, value: v.clone() });
                } else {
                    writer.write(&Event::Text { id, value });
                }
                emit_trees(&t.after, &mut writer, &mut ids);
            }
            Event::EndElement { id, .. } => {
                let frame = frames.pop().ok_or_else(|| {
                    PulError::Format(format!("unbalanced end of element {id} in the input stream"))
                })?;
                emit_trees(&frame.last, &mut writer, &mut ids);
                writer.write(&Event::EndElement { id: frame.id, name: frame.name });
                emit_trees(&frame.after, &mut writer, &mut ids);
            }
        }
    }
    Ok(writer.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::{apply_pul, ApplyOptions};
    use crate::obtainable::canonical_string;
    use xdm::parser::{parse_document, parse_document_identified};
    use xdm::writer::write_document_identified;
    use xdm::Document;

    fn fixture() -> (Document, String) {
        let doc = parse_document(
            "<issue volume=\"30\"><article><title>T</title><authors><author>A</author>\
             <author>B</author></authors></article><article code=\"x\"><title>U</title>\
             </article></issue>",
        )
        .unwrap();
        let xml = write_document_identified(&doc);
        (doc, xml)
    }

    /// Applies the PUL both in memory and in streaming and checks that the two
    /// results are structurally identical.
    fn check_same(ops: Vec<UpdateOp>) {
        let (doc, xml) = fixture();
        let pul: Pul = ops.into_iter().collect();
        let mut mem = doc.clone();
        apply_pul(&mut mem, &pul, &ApplyOptions::default()).unwrap();
        let streamed = apply_streaming(&xml, &pul, doc.next_id()).unwrap();
        let streamed_doc = parse_document_identified(&streamed).unwrap();
        assert_eq!(
            canonical_string(&mem),
            canonical_string(&streamed_doc),
            "stream and in-memory evaluation must coincide"
        );
    }

    #[test]
    fn rename_value_and_attribute_ops() {
        // ids: issue=1 volume=2 article=3 title=4 T=5 authors=6 author=7 A=8
        //      author=9 B=10 article=11 code=12 title=13 U=14
        check_same(vec![
            UpdateOp::rename(3u64, "paper"),
            UpdateOp::replace_value(5u64, "New"),
            UpdateOp::replace_value(12u64, "y"),
            UpdateOp::rename(12u64, "kind"),
        ]);
    }

    #[test]
    fn deletions_and_replacements() {
        check_same(vec![
            UpdateOp::delete(9u64),
            UpdateOp::replace_node(4u64, vec![Tree::element_with_text("heading", "H")]),
            UpdateOp::delete(12u64),
        ]);
    }

    #[test]
    fn insertions_everywhere() {
        check_same(vec![
            UpdateOp::ins_before(4u64, vec![Tree::element_with_text("year", "2004")]),
            UpdateOp::ins_after(4u64, vec![Tree::element_with_text("month", "March")]),
            UpdateOp::ins_first(6u64, vec![Tree::element_with_text("author", "Zero")]),
            UpdateOp::ins_last(6u64, vec![Tree::element_with_text("author", "Last")]),
            UpdateOp::ins_into(11u64, vec![Tree::element("abstract")]),
            UpdateOp::ins_attributes(3u64, vec![Tree::attribute("id", "a1")]),
        ]);
    }

    #[test]
    fn multiple_insertions_on_the_same_target() {
        check_same(vec![
            UpdateOp::ins_after(7u64, vec![Tree::element_with_text("author", "C1")]),
            UpdateOp::ins_after(7u64, vec![Tree::element_with_text("author", "C2")]),
            UpdateOp::ins_last(6u64, vec![Tree::element_with_text("author", "L1")]),
            UpdateOp::ins_last(6u64, vec![Tree::element_with_text("author", "L2")]),
            UpdateOp::ins_first(6u64, vec![Tree::element_with_text("author", "F1")]),
            UpdateOp::ins_first(6u64, vec![Tree::element_with_text("author", "F2")]),
        ]);
    }

    #[test]
    fn replace_content_overrides_children_insertions() {
        check_same(vec![
            UpdateOp::replace_content(6u64, Some("no more authors".into())),
            UpdateOp::ins_last(6u64, vec![Tree::element_with_text("author", "Ignored")]),
            UpdateOp::rename(6u64, "people"),
        ]);
        check_same(vec![UpdateOp::replace_content(3u64, None)]);
    }

    #[test]
    fn delete_with_sibling_insertions() {
        check_same(vec![
            UpdateOp::delete(4u64),
            UpdateOp::ins_before(4u64, vec![Tree::element("kept")]),
            UpdateOp::ins_after(4u64, vec![Tree::element("also-kept")]),
        ]);
    }

    #[test]
    fn replace_attribute_node_and_text_node() {
        check_same(vec![
            UpdateOp::replace_node(2u64, vec![Tree::attribute("vol", "31")]),
            UpdateOp::replace_node(5u64, vec![Tree::element_with_text("b", "bold")]),
        ]);
    }

    #[test]
    fn text_node_sibling_insertions() {
        check_same(vec![
            UpdateOp::ins_before(5u64, vec![Tree::element("before-text")]),
            UpdateOp::ins_after(5u64, vec![Tree::element("after-text")]),
        ]);
    }

    #[test]
    fn ops_inside_deleted_subtree_are_overridden() {
        check_same(vec![
            UpdateOp::delete(6u64),
            UpdateOp::rename(7u64, "x"),
            UpdateOp::replace_value(8u64, "y"),
        ]);
    }

    #[test]
    fn streaming_duplicate_attribute_is_an_error() {
        let (_, xml) = fixture();
        let pul: Pul = vec![UpdateOp::ins_attributes(1u64, vec![Tree::attribute("volume", "31")])]
            .into_iter()
            .collect();
        assert!(matches!(apply_streaming(&xml, &pul, 1000), Err(PulError::Dynamic(_))));
    }

    #[test]
    fn streaming_rejects_incompatible_puls() {
        let (_, xml) = fixture();
        let pul: Pul =
            vec![UpdateOp::rename(3u64, "a"), UpdateOp::rename(3u64, "b")].into_iter().collect();
        assert!(matches!(apply_streaming(&xml, &pul, 1000), Err(PulError::Incompatible { .. })));
    }

    #[test]
    fn fresh_identifiers_do_not_clash_with_existing_ones() {
        let (doc, xml) = fixture();
        let pul: Pul =
            vec![UpdateOp::ins_last(6u64, vec![Tree::element_with_text("author", "New")])]
                .into_iter()
                .collect();
        let out = apply_streaming(&xml, &pul, doc.next_id()).unwrap();
        let out_doc = parse_document_identified(&out).unwrap();
        let mut ids: Vec<u64> = out_doc.preorder_from_root().iter().map(|n| n.as_u64()).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before, "identifiers must stay unique");
    }

    #[test]
    fn empty_pul_is_identity() {
        let (doc, xml) = fixture();
        let pul = Pul::new();
        let out = apply_streaming(&xml, &pul, doc.next_id()).unwrap();
        let out_doc = parse_document_identified(&out).unwrap();
        assert_eq!(canonical_string(&doc), canonical_string(&out_doc));
        // identifiers of untouched nodes are preserved
        assert_eq!(doc.preorder_from_root(), out_doc.preorder_from_root());
    }
}
