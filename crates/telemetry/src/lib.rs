//! Unified telemetry for PUL sessions: one registry of lock-free metrics, a
//! bounded structured event journal, and a clonable [`Telemetry`] handle that
//! is a single branch when disabled.
//!
//! The design mirrors the `Faults` failpoint handle (PR 7): a `Telemetry` is
//! an `Option<Arc<..>>`. [`Telemetry::disabled`] (the default) carries `None`,
//! so every instrumentation call — counter bump, histogram observation, span
//! guard, event record — reduces to one branch on a pointer-sized option and
//! compiles out of the hot path. [`Telemetry::enabled`] shares one
//! [`Metrics`] registry and one [`EventJournal`] across every clone, so a
//! `Durable<ShardedExecutor>` behind an `IngestQueue` reports through the
//! same registry as the bare `Executor` it wraps.
//!
//! Metrics are *fixed fields*, not a string-keyed map: the set of series is
//! part of the API (see [`Metrics`]), reads are field loads, and the
//! instrument selectors are plain `fn(&Metrics) -> &Counter` pointers — no
//! allocation, hashing or interning anywhere on the record path.
//!
//! Reading side: [`Telemetry::snapshot`] freezes the registry into a
//! [`MetricsSnapshot`] (plain integers + [`HistogramSummary`] quantiles),
//! [`MetricsSnapshot::render_text`] emits a Prometheus-style text exposition,
//! and [`Telemetry::recent_events`] drains a copy of the bounded event ring
//! (oldest dropped first once the ring is full).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing event count. All operations are relaxed atomic
/// adds — safe from any thread, never a lock.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, bytes held) that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `d` (negative to decrease).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket `i` holds observations `v` with
/// `bucket_index(v) == i`, i.e. `[2^(i-1), 2^i)` for `i > 0` and `{0}` for
/// `i == 0`. 64 buckets cover the whole `u64` range.
const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed log2-bucket histogram. Observations are two relaxed atomic adds
/// plus a `fetch_max` — no lock, no allocation — and the summary side
/// estimates p50/p95 from the bucket counts (exact `count`/`sum`/`max`).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The log2 bucket an observation lands in.
#[inline]
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i` — the value reported for
/// quantiles that resolve inside it.
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i).saturating_sub(1).max(1u64 << (i - 1))
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v).min(HISTOGRAM_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Freezes the histogram into exact `count`/`sum`/`max` plus log2-bucket
    /// estimates of p50 and p95 (each quantile reports its bucket's upper
    /// bound, clamped to the observed maximum).
    pub fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = counts.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &n) in counts.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_bound(i).min(max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p95: quantile(0.95),
            max,
        }
    }
}

/// A frozen [`Histogram`]: exact totals, log2-estimated quantiles.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Estimated median (log2-bucket upper bound, clamped to `max`).
    pub p50: u64,
    /// Estimated 95th percentile (log2-bucket upper bound, clamped to `max`).
    pub p95: u64,
    /// Exact maximum observed value.
    pub max: u64,
}

// ---------------------------------------------------------------------------
// event journal
// ---------------------------------------------------------------------------

/// What happened — the structured half of an [`Event`]. Kinds that map to a
/// stable `XPUL-*` error code carry it (see [`EventKind::code`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A commit published a new version.
    Commit,
    /// A commit or transaction rolled back (journal rewind / WAL truncate).
    Rollback,
    /// A transient store failure was retried with backoff.
    Retry,
    /// The durable layer flipped into sticky read-only degraded mode.
    Degraded,
    /// A background maintenance pass (checkpoint/compaction) failed.
    MaintenanceFailure,
    /// Compaction renumbered the arena and bumped the epoch.
    CompactionEpoch,
    /// An ingest submission was shed at the admission bound.
    Shed,
    /// An ingest ticket's deadline expired before its round committed.
    DeadlineExpired,
    /// A checkpoint image was written and the WAL rotated.
    Checkpoint,
    /// An injected failpoint fired.
    FaultHit,
}

impl EventKind {
    /// Stable lower-case label used in the text exposition and journal dumps.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Commit => "commit",
            EventKind::Rollback => "rollback",
            EventKind::Retry => "retry",
            EventKind::Degraded => "degraded",
            EventKind::MaintenanceFailure => "maintenance_failure",
            EventKind::CompactionEpoch => "compaction_epoch",
            EventKind::Shed => "shed",
            EventKind::DeadlineExpired => "deadline_expired",
            EventKind::Checkpoint => "checkpoint",
            EventKind::FaultHit => "fault_hit",
        }
    }

    /// The stable `XPUL-*` error code this event kind surfaces as, if any.
    pub fn code(self) -> Option<&'static str> {
        match self {
            EventKind::Degraded => Some("XPUL-E09"),
            EventKind::Shed | EventKind::DeadlineExpired => Some("XPUL-E08"),
            EventKind::FaultHit => Some("XPUL-E04"),
            _ => None,
        }
    }
}

/// One structured journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Journal-global sequence number (monotone; gaps mean dropped records
    /// never happen — the ring drops *old* records, seq keeps counting).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// The session version the event is about (0 when not version-related).
    pub version: u64,
    /// Free-form context — built lazily, only when telemetry is armed.
    pub detail: String,
}

/// How many events the journal ring retains before dropping oldest-first.
pub const EVENT_JOURNAL_CAP: usize = 256;

/// A bounded ring of [`Event`]s behind one mutex: concurrent recorders
/// (commit lanes, the ingest pipeline threads) serialize on push, so records
/// never tear and sequence numbers are monotone in ring order. Once full the
/// *oldest* record is dropped (and counted).
#[derive(Debug, Default)]
pub struct EventJournal {
    ring: Mutex<VecDeque<Event>>,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl EventJournal {
    /// Appends a record, dropping the oldest if the ring is at capacity.
    pub fn push(&self, kind: EventKind, version: u64, detail: String) {
        let mut ring = self.ring.lock().expect("event journal mutex poisoned");
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if ring.len() >= EVENT_JOURNAL_CAP {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(Event { seq, kind, version, detail });
    }

    /// A copy of the retained records, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.ring.lock().expect("event journal mutex poisoned").iter().cloned().collect()
    }

    /// How many records have been dropped oldest-first to stay bounded.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// the registry
// ---------------------------------------------------------------------------

/// Declares the fixed metric registry once: field set, snapshot struct, and
/// the text exposition all derive from the same list, so they cannot drift.
macro_rules! registry {
    (
        counters { $($cname:ident: $chelp:literal,)* }
        gauges { $($gname:ident: $ghelp:literal,)* }
        histograms { $($hname:ident: $hhelp:literal,)* }
    ) => {
        /// The fixed metric registry shared by every [`Telemetry`] clone.
        /// Fields are the series; instrument selectors are plain field
        /// accessors (`|m| &m.commits`-shaped `fn` pointers).
        #[derive(Debug, Default)]
        pub struct Metrics {
            $(#[doc = $chelp] pub $cname: Counter,)*
            $(#[doc = $ghelp] pub $gname: Gauge,)*
            $(#[doc = $hhelp] pub $hname: Histogram,)*
        }

        /// A frozen [`Metrics`] registry: plain integers and
        /// [`HistogramSummary`] values, cheap to clone, compare and print.
        #[derive(Debug, Default, Clone, PartialEq, Eq)]
        pub struct MetricsSnapshot {
            $(#[doc = $chelp] pub $cname: u64,)*
            $(#[doc = $ghelp] pub $gname: i64,)*
            $(#[doc = $hhelp] pub $hname: HistogramSummary,)*
        }

        impl Metrics {
            /// Freezes every series into a [`MetricsSnapshot`].
            pub fn snapshot(&self) -> MetricsSnapshot {
                MetricsSnapshot {
                    $($cname: self.$cname.get(),)*
                    $($gname: self.$gname.get(),)*
                    $($hname: self.$hname.summary(),)*
                }
            }
        }

        impl MetricsSnapshot {
            /// Prometheus-style text exposition of every series, in
            /// registry declaration order (deterministic for golden tests).
            pub fn render_text(&self) -> String {
                let mut out = String::new();
                $(render_counter(&mut out, stringify!($cname), $chelp, self.$cname);)*
                $(render_gauge(&mut out, stringify!($gname), $ghelp, self.$gname);)*
                $(render_histogram(&mut out, stringify!($hname), $hhelp, &self.$hname);)*
                out
            }
        }
    };
}

registry! {
    counters {
        commits: "Commits published (any surface, merged ingest rounds count once).",
        rollbacks: "Journal rewinds: failed commits, transaction rollbacks, WAL truncates.",
        laned_commits: "Sharded commits that took the parallel commit-lane path.",
        snapshot_hits: "MVCC snapshot cache probes served from the cache.",
        snapshot_misses: "MVCC snapshot cache probes that had to freeze or replay.",
        rounds_coalesced: "Ingest rounds committed as one merged multi-submission PUL.",
        rounds_serialized: "Ingest rounds committed as a single submission.",
        tickets_committed: "Ingest tickets completed with a committed version.",
        tickets_failed: "Ingest tickets completed with an error (conflicts, faults, overload).",
        tickets_shed: "Submissions shed at the admission bound (XPUL-E08).",
        tickets_expired: "Tickets failed by their deadline before committing (XPUL-E08).",
        wal_append_bytes: "Bytes appended to the write-ahead log.",
        retry_attempts: "Transient store-operation attempts beyond the first (backoff retries).",
        maintenance_failures: "Background maintenance passes that failed (checkpoint/compaction).",
        degraded_transitions: "Flips into sticky read-only degraded mode (XPUL-E09).",
        fault_hits: "Injected failpoints that fired.",
    }
    gauges {
        queue_depth: "Submissions waiting in the ingest queue right now.",
    }
    histograms {
        commit_ns: "Wall time of a commit (apply + labeling + sink append), ns.",
        resolve_ns: "Wall time of a resolve (integrate + reconcile + aggregate), ns.",
        lane_commit_ns: "Per-lane wall time inside a parallel laned commit, ns.",
        fence_lane_prologue_ns: "Laned-commit prologue: fence computation + stripe carving, ns.",
        enqueue_block_ns: "Producer wall time blocked on the ingest capacity bound, ns.",
        ticket_latency_ns: "End-to-end ticket latency from enqueue to completion, ns.",
        wal_append_ns: "WAL frame append (write, excluding fsync) wall time, ns.",
        wal_sync_ns: "WAL fsync wall time, ns.",
        wal_rotate_ns: "WAL segment seal + rotate wall time, ns.",
        checkpoint_ns: "Checkpoint image write (encode + tmp + fsync + rename), ns.",
    }
}

fn render_counter(out: &mut String, name: &str, help: &str, v: u64) {
    out.push_str(&format!(
        "# HELP xmlpul_{name} {help}\n# TYPE xmlpul_{name} counter\nxmlpul_{name} {v}\n"
    ));
}

fn render_gauge(out: &mut String, name: &str, help: &str, v: i64) {
    out.push_str(&format!(
        "# HELP xmlpul_{name} {help}\n# TYPE xmlpul_{name} gauge\nxmlpul_{name} {v}\n"
    ));
}

fn render_histogram(out: &mut String, name: &str, help: &str, h: &HistogramSummary) {
    out.push_str(&format!("# HELP xmlpul_{name} {help}\n# TYPE xmlpul_{name} summary\n"));
    out.push_str(&format!("xmlpul_{name}{{quantile=\"0.5\"}} {}\n", h.p50));
    out.push_str(&format!("xmlpul_{name}{{quantile=\"0.95\"}} {}\n", h.p95));
    out.push_str(&format!("xmlpul_{name}_max {}\n", h.max));
    out.push_str(&format!("xmlpul_{name}_sum {}\n", h.sum));
    out.push_str(&format!("xmlpul_{name}_count {}\n", h.count));
}

// ---------------------------------------------------------------------------
// the handle
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Inner {
    metrics: Metrics,
    journal: EventJournal,
}

/// The clonable telemetry handle threaded through every subsystem.
///
/// [`Telemetry::disabled`] (the `Default`) is a `None`: every record call is
/// a single branch and no state exists. [`Telemetry::enabled`] allocates one
/// shared registry + journal; clones observe into the same state, so arming
/// the outermost layer (an `IngestQueue` config, a `Durable` façade) arms
/// the whole stack beneath it.
#[derive(Debug, Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl Telemetry {
    /// An armed handle with a fresh registry and event journal.
    pub fn enabled() -> Telemetry {
        Telemetry(Some(Arc::new(Inner::default())))
    }

    /// The no-op handle (same as `Default`): one branch per record call,
    /// nothing allocated.
    pub fn disabled() -> Telemetry {
        Telemetry(None)
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Whether two handles share the same registry.
    pub fn same_registry(&self, other: &Telemetry) -> bool {
        match (&self.0, &other.0) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Bumps a counter by one. `sel` picks the series:
    /// `t.count(|m| &m.commits)`.
    #[inline]
    pub fn count(&self, sel: fn(&Metrics) -> &Counter) {
        if let Some(inner) = &self.0 {
            sel(&inner.metrics).inc();
        }
    }

    /// Bumps a counter by `n`.
    #[inline]
    pub fn add(&self, sel: fn(&Metrics) -> &Counter, n: u64) {
        if let Some(inner) = &self.0 {
            sel(&inner.metrics).add(n);
        }
    }

    /// Sets a gauge.
    #[inline]
    pub fn gauge_set(&self, sel: fn(&Metrics) -> &Gauge, v: i64) {
        if let Some(inner) = &self.0 {
            sel(&inner.metrics).set(v);
        }
    }

    /// Moves a gauge by `d`.
    #[inline]
    pub fn gauge_add(&self, sel: fn(&Metrics) -> &Gauge, d: i64) {
        if let Some(inner) = &self.0 {
            sel(&inner.metrics).add(d);
        }
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&self, sel: fn(&Metrics) -> &Histogram, v: u64) {
        if let Some(inner) = &self.0 {
            sel(&inner.metrics).observe(v);
        }
    }

    /// Records the nanoseconds elapsed since `since` into a histogram.
    #[inline]
    pub fn observe_since(&self, sel: fn(&Metrics) -> &Histogram, since: Instant) {
        if let Some(inner) = &self.0 {
            sel(&inner.metrics).observe(since.elapsed().as_nanos() as u64);
        }
    }

    /// Starts a span whose wall time lands in the selected histogram when the
    /// guard drops. Disabled handles return an inert guard without reading
    /// the clock.
    #[inline]
    pub fn span(&self, sel: fn(&Metrics) -> &Histogram) -> SpanTimer {
        SpanTimer { armed: self.0.as_ref().map(|inner| (Instant::now(), Arc::clone(inner), sel)) }
    }

    /// Appends a structured record to the event journal. The `detail` closure
    /// is only evaluated when the handle is armed, so formatting costs
    /// nothing on the disabled path.
    #[inline]
    pub fn event(&self, kind: EventKind, version: u64, detail: impl FnOnce() -> String) {
        if let Some(inner) = &self.0 {
            record_event(inner, kind, version, detail());
        }
    }

    /// Freezes the registry. `None` when disabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.0.as_ref().map(|inner| inner.metrics.snapshot())
    }

    /// Direct registry access for readers that want live series (`None` when
    /// disabled).
    pub fn metrics(&self) -> Option<&Metrics> {
        self.0.as_deref().map(|inner| &inner.metrics)
    }

    /// A copy of the retained journal records, oldest first (empty when
    /// disabled).
    pub fn recent_events(&self) -> Vec<Event> {
        self.0.as_ref().map(|inner| inner.journal.recent()).unwrap_or_default()
    }

    /// How many journal records were dropped oldest-first to stay bounded.
    pub fn events_dropped(&self) -> u64 {
        self.0.as_ref().map(|inner| inner.journal.dropped()).unwrap_or(0)
    }
}

/// Event recording is rare (commits, failures, mode flips) next to counter
/// traffic — keep it out of the callers' instruction stream.
#[cold]
fn record_event(inner: &Inner, kind: EventKind, version: u64, detail: String) {
    inner.journal.push(kind, version, detail);
}

/// What an armed [`SpanTimer`] carries: the start instant, the shared
/// registry, and the histogram series the elapsed time lands in.
type ArmedSpan = (Instant, Arc<Inner>, fn(&Metrics) -> &Histogram);

/// A drop guard recording its lifetime into one histogram series. Inert (no
/// clock read, no state) when produced by a disabled handle.
#[derive(Debug)]
pub struct SpanTimer {
    armed: Option<ArmedSpan>,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((start, inner, sel)) = self.armed.take() {
            sel(&inner.metrics).observe(start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record_only_when_armed() {
        let off = Telemetry::disabled();
        off.count(|m| &m.commits);
        off.gauge_set(|m| &m.queue_depth, 9);
        assert!(off.snapshot().is_none());
        assert!(!off.is_enabled());

        let on = Telemetry::enabled();
        on.count(|m| &m.commits);
        on.add(|m| &m.commits, 2);
        on.gauge_set(|m| &m.queue_depth, 9);
        on.gauge_add(|m| &m.queue_depth, -4);
        let snap = on.snapshot().unwrap();
        assert_eq!(snap.commits, 3);
        assert_eq!(snap.queue_depth, 5);
    }

    #[test]
    fn clones_share_one_registry() {
        let a = Telemetry::enabled();
        let b = a.clone();
        assert!(a.same_registry(&b));
        assert!(!a.same_registry(&Telemetry::enabled()));
        b.count(|m| &m.rollbacks);
        assert_eq!(a.snapshot().unwrap().rollbacks, 1);
    }

    #[test]
    fn histogram_buckets_cover_the_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);

        let h = Histogram::default();
        for v in [0, 1, 7, 100, 1000, u64::MAX] {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 6);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(
            s.sum,
            0u64.wrapping_add(1)
                .wrapping_add(7)
                .wrapping_add(100)
                .wrapping_add(1000)
                .wrapping_add(u64::MAX)
        );
    }

    #[test]
    fn histogram_quantiles_are_log2_estimates_clamped_to_max() {
        let h = Histogram::default();
        for _ in 0..95 {
            h.observe(10); // bucket [8, 16), bound 15
        }
        for _ in 0..5 {
            h.observe(1000); // bucket [512, 1024), bound 1023 → clamped 1000
        }
        let s = h.summary();
        assert_eq!(s.p50, 15);
        assert_eq!(s.p95, 15);
        assert_eq!(s.max, 1000);

        let one = Histogram::default();
        one.observe(3);
        let s = one.summary();
        assert_eq!((s.p50, s.p95, s.max), (3, 3, 3));
    }

    #[test]
    fn span_timer_records_on_drop() {
        let t = Telemetry::enabled();
        {
            let _span = t.span(|m| &m.commit_ns);
        }
        assert_eq!(t.snapshot().unwrap().commit_ns.count, 1);
        // Disabled handles hand out inert guards.
        let off = Telemetry::disabled();
        drop(off.span(|m| &m.commit_ns));
    }

    #[test]
    fn event_journal_is_bounded_and_drops_oldest_first() {
        let t = Telemetry::enabled();
        for i in 0..(EVENT_JOURNAL_CAP as u64 + 10) {
            t.event(EventKind::Commit, i, || format!("v{i}"));
        }
        let events = t.recent_events();
        assert_eq!(events.len(), EVENT_JOURNAL_CAP);
        assert_eq!(t.events_dropped(), 10);
        assert_eq!(events.first().unwrap().seq, 10, "oldest records dropped first");
        assert_eq!(events.last().unwrap().seq, EVENT_JOURNAL_CAP as u64 + 9);
        let monotone = events.windows(2).all(|w| w[0].seq + 1 == w[1].seq);
        assert!(monotone, "ring order is sequence order");
    }

    #[test]
    fn event_detail_is_lazy_when_disabled() {
        let off = Telemetry::disabled();
        off.event(EventKind::Degraded, 0, || panic!("detail must not be evaluated"));
        assert!(off.recent_events().is_empty());
    }

    #[test]
    fn event_kinds_expose_codes_and_labels() {
        assert_eq!(EventKind::Degraded.code(), Some("XPUL-E09"));
        assert_eq!(EventKind::Shed.code(), Some("XPUL-E08"));
        assert_eq!(EventKind::Commit.code(), None);
        assert_eq!(EventKind::MaintenanceFailure.label(), "maintenance_failure");
    }

    #[test]
    fn render_text_is_deterministic() {
        let t = Telemetry::enabled();
        t.count(|m| &m.commits);
        t.observe(|m| &m.wal_append_ns, 100);
        let text = t.snapshot().unwrap().render_text();
        assert!(text.contains("# TYPE xmlpul_commits counter\nxmlpul_commits 1\n"));
        assert!(text.contains("# TYPE xmlpul_queue_depth gauge\nxmlpul_queue_depth 0\n"));
        assert!(text.contains("xmlpul_wal_append_ns_count 1\n"));
        assert!(text.contains("xmlpul_wal_append_ns{quantile=\"0.5\"} 100\n"));
        assert_eq!(text, t.snapshot().unwrap().render_text());
    }
}
