//! The XPath subset used to select update targets.

use xdm::{Document, NodeId, NodeKind};

/// A node test within a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// An element with the given name.
    Element(String),
    /// Any element (`*`).
    AnyElement,
    /// An attribute with the given name (`@name`).
    Attribute(String),
    /// Any attribute (`@*`).
    AnyAttribute,
    /// A text node (`text()`).
    Text,
}

/// A positional predicate within a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Position {
    /// 1-based index: `[n]`.
    Index(usize),
    /// The last matching node: `[last()]`.
    Last,
}

/// One step of a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Whether the step searches all descendants (`//`) or only children (`/`).
    pub descendant: bool,
    /// The node test.
    pub test: NodeTest,
    /// Optional positional predicate (`[n]` or `[last()]`).
    pub position: Option<Position>,
}

/// A parsed absolute path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// The steps of the path, in order.
    pub steps: Vec<Step>,
}

impl Path {
    /// Parses a path expression such as `/issue/paper[2]//author/@email`.
    pub fn parse(input: &str) -> Result<Path, String> {
        let s = input.trim();
        if !s.starts_with('/') {
            return Err(format!("paths must be absolute (start with '/'): '{s}'"));
        }
        let mut steps = Vec::new();
        let mut rest = s;
        while !rest.is_empty() {
            let descendant = if let Some(r) = rest.strip_prefix("//") {
                rest = r;
                true
            } else if let Some(r) = rest.strip_prefix('/') {
                rest = r;
                false
            } else {
                return Err(format!("expected '/' in path near '{rest}'"));
            };
            if rest.is_empty() {
                return Err("path ends with a dangling '/'".into());
            }
            let end = rest.find('/').unwrap_or(rest.len());
            let (step_str, tail) = rest.split_at(end);
            rest = tail;
            let (name_part, position) = match step_str.find('[') {
                Some(i) => {
                    let close = step_str
                        .find(']')
                        .ok_or_else(|| format!("missing ']' in step '{step_str}'"))?;
                    let predicate = step_str[i + 1..close].trim();
                    let pos = if predicate == "last()" {
                        Position::Last
                    } else {
                        let n: usize = predicate
                            .parse()
                            .map_err(|_| format!("invalid position predicate in '{step_str}'"))?;
                        if n == 0 {
                            return Err(format!(
                                "position predicates are 1-based, got 0 in '{step_str}'"
                            ));
                        }
                        Position::Index(n)
                    };
                    (&step_str[..i], Some(pos))
                }
                None => (step_str, None),
            };
            let test = if name_part == "text()" {
                NodeTest::Text
            } else if name_part == "@*" {
                NodeTest::AnyAttribute
            } else if let Some(attr) = name_part.strip_prefix('@') {
                NodeTest::Attribute(attr.to_string())
            } else if name_part == "*" {
                NodeTest::AnyElement
            } else if !name_part.is_empty() {
                NodeTest::Element(name_part.to_string())
            } else {
                return Err(format!("empty step in path '{s}'"));
            };
            steps.push(Step { descendant, test, position });
        }
        Ok(Path { steps })
    }

    /// Evaluates the path against a document, returning the matched nodes in
    /// document order.
    pub fn select(&self, doc: &Document) -> Vec<NodeId> {
        let Some(root) = doc.root() else { return Vec::new() };
        // The initial context is the (virtual) document node: the first step
        // matches the root element among its "children".
        let mut context: Vec<NodeId> = vec![root];
        let mut first = true;
        for step in &self.steps {
            let mut next: Vec<NodeId> = Vec::new();
            for &ctx in &context {
                let candidates: Vec<NodeId> = if first {
                    // first step: the root element itself (plus its descendants for `//`)
                    if step.descendant {
                        let mut v = vec![ctx];
                        v.extend(doc.descendants(ctx));
                        v
                    } else {
                        vec![ctx]
                    }
                } else if step.descendant {
                    doc.descendants(ctx)
                } else {
                    let mut v: Vec<NodeId> =
                        doc.children(ctx).map(|c| c.to_vec()).unwrap_or_default();
                    if matches!(step.test, NodeTest::Attribute(_) | NodeTest::AnyAttribute) {
                        v = doc.attributes(ctx).map(|a| a.to_vec()).unwrap_or_default();
                    }
                    v
                };
                let mut matched: Vec<NodeId> = candidates
                    .into_iter()
                    .filter(|&c| match &step.test {
                        NodeTest::Element(name) => {
                            doc.kind(c) == Ok(NodeKind::Element)
                                && doc.name(c).ok().flatten() == Some(name.as_str())
                        }
                        NodeTest::AnyElement => doc.kind(c) == Ok(NodeKind::Element),
                        NodeTest::Attribute(name) => {
                            doc.kind(c) == Ok(NodeKind::Attribute)
                                && doc.name(c).ok().flatten() == Some(name.as_str())
                        }
                        NodeTest::AnyAttribute => doc.kind(c) == Ok(NodeKind::Attribute),
                        NodeTest::Text => doc.kind(c) == Ok(NodeKind::Text),
                    })
                    .collect();
                match step.position {
                    Some(Position::Index(n)) => {
                        matched = matched.into_iter().skip(n - 1).take(1).collect();
                    }
                    Some(Position::Last) => {
                        matched = matched.last().copied().into_iter().collect();
                    }
                    None => {}
                }
                next.extend(matched);
            }
            next.dedup();
            context = next;
            first = false;
        }
        context
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdm::parser::parse_document;

    fn doc() -> Document {
        parse_document(
            "<issue volume=\"30\"><paper id=\"p1\"><title>A</title><author>X</author></paper>\
             <paper id=\"p2\"><title>B</title><authors><author>Y</author><author>Z</author>\
             </authors></paper></issue>",
        )
        .unwrap()
    }

    #[test]
    fn parse_and_select_children() {
        let d = doc();
        let p = Path::parse("/issue/paper").unwrap();
        assert_eq!(p.select(&d).len(), 2);
        let p = Path::parse("/issue/paper[2]/title").unwrap();
        let hits = p.select(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(d.text_content(hits[0]), "B");
    }

    #[test]
    fn descendant_and_wildcards() {
        let d = doc();
        assert_eq!(Path::parse("//author").unwrap().select(&d).len(), 3);
        assert_eq!(Path::parse("/issue/paper[2]//author").unwrap().select(&d).len(), 2);
        assert_eq!(Path::parse("/issue/*").unwrap().select(&d).len(), 2);
        assert_eq!(Path::parse("//paper[1]/title/text()").unwrap().select(&d).len(), 1);
    }

    #[test]
    fn attributes() {
        let d = doc();
        assert_eq!(Path::parse("/issue/@volume").unwrap().select(&d).len(), 1);
        assert_eq!(Path::parse("//paper/@id").unwrap().select(&d).len(), 2);
        assert_eq!(Path::parse("//@*").unwrap().select(&d).len(), 3);
    }

    #[test]
    fn last_selects_the_final_match() {
        let d = doc();
        // the last paper of the issue
        let hits = Path::parse("/issue/paper[last()]/title").unwrap().select(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(d.text_content(hits[0]), "B");
        // last() is per context node: the last author of *each* authors element
        let hits = Path::parse("/issue/paper[2]/authors/author[last()]").unwrap().select(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(d.text_content(hits[0]), "Z");
        // on a descendant axis, last() picks the final match per context
        let hits = Path::parse("//author[last()]").unwrap().select(&d);
        assert_eq!(hits.iter().map(|&h| d.text_content(h)).collect::<Vec<_>>(), vec!["Z"]);
        // single match: [last()] equals [1]
        assert_eq!(
            Path::parse("/issue/paper[last()]").unwrap().select(&d),
            Path::parse("/issue/paper[2]").unwrap().select(&d)
        );
    }

    #[test]
    fn last_parses_into_the_position_enum() {
        let p = Path::parse("/a/b[last()]").unwrap();
        assert_eq!(p.steps[1].position, Some(Position::Last));
        let p = Path::parse("/a/b[3]").unwrap();
        assert_eq!(p.steps[1].position, Some(Position::Index(3)));
    }

    #[test]
    fn parse_errors() {
        assert!(Path::parse("relative/path").is_err());
        assert!(Path::parse("/a[").is_err());
        assert!(Path::parse("/a[x]").is_err());
        assert!(Path::parse("/a/").is_err());
        assert!(Path::parse("/a[0]").is_err(), "positions are 1-based");
        assert!(Path::parse("/a[last]").is_err(), "bare 'last' is not a function call");
    }

    #[test]
    fn root_element_test_must_match() {
        let d = doc();
        assert!(Path::parse("/wrong/paper").unwrap().select(&d).is_empty());
        assert_eq!(Path::parse("/issue").unwrap().select(&d).len(), 1);
    }
}
