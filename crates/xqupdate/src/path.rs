//! The XPath subset used to select update targets.

use xdm::{Document, NodeId, NodeKind};

/// A node test within a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// An element with the given name.
    Element(String),
    /// Any element (`*`).
    AnyElement,
    /// Any element under the given namespace prefix (`ns:*`). Names are
    /// compared literally — `ns:*` matches every element whose name starts
    /// with `ns:`, consistent with the prefix-literal name model used
    /// everywhere else in the stack.
    ElementPrefix(String),
    /// An attribute with the given name (`@name`).
    Attribute(String),
    /// Any attribute (`@*`).
    AnyAttribute,
    /// Any attribute under the given namespace prefix (`@ns:*`).
    AttributePrefix(String),
    /// A text node (`text()`).
    Text,
}

impl NodeTest {
    /// Whether `name` (a literal `prefix:local` name) falls under `prefix`.
    fn prefix_matches(prefix: &str, name: &str) -> bool {
        name.strip_prefix(prefix).is_some_and(|rest| rest.starts_with(':'))
    }
}

/// A comparison operator usable in attribute predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison to an attribute value and the literal operand.
    /// When both sides parse as numbers the comparison is numeric (so
    /// `[@n < 5]` matches `n="4.5"` but not `n="10"`); otherwise both sides
    /// compare as strings, lexicographically.
    pub fn compare(self, left: &str, right: &str) -> bool {
        let ord = match (left.trim().parse::<f64>(), right.trim().parse::<f64>()) {
            (Ok(l), Ok(r)) => match l.partial_cmp(&r) {
                Some(ord) => ord,
                None => return false, // NaN compares false, like XPath
            },
            _ => left.cmp(right),
        };
        match self {
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Ne => ord != std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Le => ord != std::cmp::Ordering::Greater,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
            CmpOp::Ge => ord != std::cmp::Ordering::Less,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A predicate within a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// 1-based index: `[n]`.
    Index(usize),
    /// The last matching node: `[last()]`.
    Last,
    /// An attribute value test: `[@name="value"]` — keeps the elements
    /// carrying an attribute `name` whose value is exactly `value`.
    AttrEquals(String, String),
    /// An attribute comparison: `[@n < 5]`, `[@id != "x"]`, `[@v >= 1.5]` —
    /// keeps the elements carrying an attribute `name` whose value satisfies
    /// the comparison ([`CmpOp::compare`]). A missing attribute never
    /// matches, whatever the operator.
    AttrCompare(String, CmpOp, String),
}

/// One step of a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Whether the step searches all descendants (`//`) or only children (`/`).
    pub descendant: bool,
    /// The node test.
    pub test: NodeTest,
    /// The predicates of the step (`[n]`, `[last()]`, `[@name="value"]`), in
    /// source order. Predicates filter left to right: each one applies to the
    /// node list the previous predicates left, per context node — so
    /// `entry[@id="x"][last()]` keeps the last of the `@id="x"` entries, not
    /// the last entry if it happens to carry `@id="x"`.
    pub predicates: Vec<Predicate>,
}

/// A parsed absolute path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// The steps of the path, in order.
    pub steps: Vec<Step>,
}

impl Path {
    /// Parses a path expression such as `/issue/paper[2]//author/@email`.
    pub fn parse(input: &str) -> Result<Path, String> {
        let s = input.trim();
        if !s.starts_with('/') {
            return Err(format!("paths must be absolute (start with '/'): '{s}'"));
        }
        let mut steps = Vec::new();
        let mut rest = s;
        while !rest.is_empty() {
            let descendant = if let Some(r) = rest.strip_prefix("//") {
                rest = r;
                true
            } else if let Some(r) = rest.strip_prefix('/') {
                rest = r;
                false
            } else {
                return Err(format!("expected '/' in path near '{rest}'"));
            };
            if rest.is_empty() {
                return Err("path ends with a dangling '/'".into());
            }
            // The step ends at the next '/' *outside* any predicate: slashes
            // (and brackets) inside quoted predicate values — URLs, paths —
            // belong to the step.
            let end = Self::step_end(rest);
            let (step_str, tail) = rest.split_at(end);
            rest = tail;
            let (name_part, predicates) = match step_str.find('[') {
                Some(i) => {
                    let predicates = Self::parse_predicates(&step_str[i..])
                        .map_err(|e| format!("{e} in step '{step_str}'"))?;
                    (&step_str[..i], predicates)
                }
                None => (step_str, Vec::new()),
            };
            let test = if name_part == "text()" {
                NodeTest::Text
            } else if name_part == "@*" {
                NodeTest::AnyAttribute
            } else if let Some(attr) = name_part.strip_prefix('@') {
                if let Some(prefix) = attr.strip_suffix(":*") {
                    if prefix.is_empty() {
                        return Err(format!("empty prefix in wildcard step '@{attr}'"));
                    }
                    NodeTest::AttributePrefix(prefix.to_string())
                } else {
                    NodeTest::Attribute(attr.to_string())
                }
            } else if name_part == "*" {
                NodeTest::AnyElement
            } else if let Some(prefix) = name_part.strip_suffix(":*") {
                if prefix.is_empty() {
                    return Err(format!("empty prefix in wildcard step '{name_part}'"));
                }
                NodeTest::ElementPrefix(prefix.to_string())
            } else if !name_part.is_empty() {
                NodeTest::Element(name_part.to_string())
            } else {
                return Err(format!("empty step in path '{s}'"));
            };
            steps.push(Step { descendant, test, predicates });
        }
        Ok(Path { steps })
    }

    /// Parses a run of predicate groups `[p1][p2]…` (starting at the first
    /// `[` of a step). Brackets and slashes inside quoted values belong to
    /// the predicate, mirroring [`step_end`](Path::step_end).
    fn parse_predicates(src: &str) -> Result<Vec<Predicate>, String> {
        let mut predicates = Vec::new();
        let mut rest = src;
        while !rest.is_empty() {
            let Some(tail) = rest.strip_prefix('[') else {
                return Err(format!("unexpected '{rest}' after a predicate"));
            };
            let mut depth = 1i32;
            let mut quote: Option<char> = None;
            let mut close = None;
            for (i, c) in tail.char_indices() {
                match quote {
                    Some(q) => {
                        if c == q {
                            quote = None;
                        }
                    }
                    None => match c {
                        '"' | '\'' => quote = Some(c),
                        '[' => depth += 1,
                        ']' => {
                            depth -= 1;
                            if depth == 0 {
                                close = Some(i);
                                break;
                            }
                        }
                        _ => {}
                    },
                }
            }
            let close = close.ok_or_else(|| "missing ']'".to_string())?;
            predicates.push(Self::parse_predicate(tail[..close].trim())?);
            rest = &tail[close + 1..];
        }
        Ok(predicates)
    }

    /// Index of the first '/' of `s` that lies outside a `[...]` predicate
    /// and outside quotes (or `s.len()` when the whole remainder is one
    /// step).
    fn step_end(s: &str) -> usize {
        let mut depth = 0i32;
        let mut quote: Option<char> = None;
        for (i, c) in s.char_indices() {
            match quote {
                Some(q) => {
                    if c == q {
                        quote = None;
                    }
                }
                None => match c {
                    '"' | '\'' if depth > 0 => quote = Some(c),
                    '[' => depth += 1,
                    ']' => depth -= 1,
                    '/' if depth <= 0 => return i,
                    _ => {}
                },
            }
        }
        s.len()
    }

    /// Parses the inside of a `[...]` predicate: a 1-based position, `last()`
    /// or an attribute comparison `@name <op> operand` where `<op>` is one of
    /// `=`, `!=`, `<`, `<=`, `>`, `>=` and the operand is a quoted string
    /// (single or double quotes) or a bare numeric literal.
    fn parse_predicate(src: &str) -> Result<Predicate, String> {
        if src == "last()" {
            return Ok(Predicate::Last);
        }
        if let Some(rest) = src.strip_prefix('@') {
            // find the operator — two-character forms before their one-char
            // prefixes, so `!=`/`<=`/`>=` never parse as `=`/`<`/`>`
            let (pos, op) = rest
                .char_indices()
                .find_map(|(i, c)| {
                    let two = rest.get(i..i + 2);
                    match c {
                        '!' if two == Some("!=") => Some((i, (CmpOp::Ne, 2))),
                        '<' if two == Some("<=") => Some((i, (CmpOp::Le, 2))),
                        '>' if two == Some(">=") => Some((i, (CmpOp::Ge, 2))),
                        '<' => Some((i, (CmpOp::Lt, 1))),
                        '>' => Some((i, (CmpOp::Gt, 1))),
                        '=' => Some((i, (CmpOp::Eq, 1))),
                        _ => None,
                    }
                })
                .ok_or_else(|| {
                    "attribute predicates take the form @name <op> value with <op> one of \
                     =, !=, <, <=, >, >="
                        .to_string()
                })?;
            let (op, op_len) = op;
            let name = rest[..pos].trim();
            let value = rest[pos + op_len..].trim();
            if name.is_empty() {
                return Err("empty attribute name in predicate".into());
            }
            let quoted = (value.starts_with('"') && value.ends_with('"') && value.len() >= 2)
                || (value.starts_with('\'') && value.ends_with('\'') && value.len() >= 2);
            let operand = if quoted {
                value[1..value.len() - 1].to_string()
            } else if value.parse::<f64>().is_ok() {
                value.to_string()
            } else {
                return Err(format!(
                    "the operand of @{name} {} must be quoted or numeric, got '{value}'",
                    op.symbol()
                ));
            };
            // a quoted `=` is the exact string test; everything else —
            // including a bare-numeric `=`, where `[@n = 5]` should match
            // n="5.0" — goes through the comparing predicate
            return Ok(match op {
                CmpOp::Eq if quoted => Predicate::AttrEquals(name.to_string(), operand),
                other => Predicate::AttrCompare(name.to_string(), other, operand),
            });
        }
        let n: usize = src.parse().map_err(|_| "invalid position predicate".to_string())?;
        if n == 0 {
            return Err("position predicates are 1-based, got 0".into());
        }
        Ok(Predicate::Index(n))
    }

    /// Evaluates the path against a document, returning the matched nodes in
    /// document order.
    pub fn select(&self, doc: &Document) -> Vec<NodeId> {
        let Some(root) = doc.root() else { return Vec::new() };
        // The initial context is the (virtual) document node: the first step
        // matches the root element among its "children".
        let mut context: Vec<NodeId> = vec![root];
        let mut first = true;
        for step in &self.steps {
            let mut next: Vec<NodeId> = Vec::new();
            for &ctx in &context {
                let candidates: Vec<NodeId> = if first {
                    // first step: the root element itself (plus its descendants for `//`)
                    if step.descendant {
                        let mut v = vec![ctx];
                        v.extend(doc.descendants(ctx));
                        v
                    } else {
                        vec![ctx]
                    }
                } else if step.descendant {
                    doc.descendants(ctx)
                } else {
                    let mut v: Vec<NodeId> =
                        doc.children(ctx).map(|c| c.to_vec()).unwrap_or_default();
                    if matches!(
                        step.test,
                        NodeTest::Attribute(_)
                            | NodeTest::AnyAttribute
                            | NodeTest::AttributePrefix(_)
                    ) {
                        v = doc.attributes(ctx).map(|a| a.to_vec()).unwrap_or_default();
                    }
                    v
                };
                let mut matched: Vec<NodeId> = candidates
                    .into_iter()
                    .filter(|&c| match &step.test {
                        NodeTest::Element(name) => {
                            doc.kind(c) == Ok(NodeKind::Element)
                                && doc.name(c).ok().flatten() == Some(name.as_str())
                        }
                        NodeTest::AnyElement => doc.kind(c) == Ok(NodeKind::Element),
                        NodeTest::ElementPrefix(prefix) => {
                            doc.kind(c) == Ok(NodeKind::Element)
                                && doc
                                    .name(c)
                                    .ok()
                                    .flatten()
                                    .is_some_and(|n| NodeTest::prefix_matches(prefix, n))
                        }
                        NodeTest::Attribute(name) => {
                            doc.kind(c) == Ok(NodeKind::Attribute)
                                && doc.name(c).ok().flatten() == Some(name.as_str())
                        }
                        NodeTest::AnyAttribute => doc.kind(c) == Ok(NodeKind::Attribute),
                        NodeTest::AttributePrefix(prefix) => {
                            doc.kind(c) == Ok(NodeKind::Attribute)
                                && doc
                                    .name(c)
                                    .ok()
                                    .flatten()
                                    .is_some_and(|n| NodeTest::prefix_matches(prefix, n))
                        }
                        NodeTest::Text => doc.kind(c) == Ok(NodeKind::Text),
                    })
                    .collect();
                // Predicates filter left to right, each against the node list
                // the previous ones left (per context node): [@id="x"][last()]
                // keeps the last of the @id="x" matches.
                for predicate in &step.predicates {
                    match predicate {
                        Predicate::Index(n) => {
                            matched = matched.into_iter().skip(n - 1).take(1).collect();
                        }
                        Predicate::Last => {
                            matched = matched.last().copied().into_iter().collect();
                        }
                        Predicate::AttrEquals(name, value) => {
                            matched.retain(|&c| {
                                doc.attribute_by_name(c, name)
                                    .ok()
                                    .flatten()
                                    .and_then(|a| doc.value(a).ok().flatten())
                                    == Some(value.as_str())
                            });
                        }
                        Predicate::AttrCompare(name, op, operand) => {
                            matched.retain(|&c| {
                                doc.attribute_by_name(c, name)
                                    .ok()
                                    .flatten()
                                    .and_then(|a| doc.value(a).ok().flatten())
                                    .is_some_and(|v| op.compare(v, operand))
                            });
                        }
                    }
                }
                next.extend(matched);
            }
            next.dedup();
            context = next;
            first = false;
        }
        context
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdm::parser::parse_document;

    fn doc() -> Document {
        parse_document(
            "<issue volume=\"30\"><paper id=\"p1\"><title>A</title><author>X</author></paper>\
             <paper id=\"p2\"><title>B</title><authors><author>Y</author><author>Z</author>\
             </authors></paper></issue>",
        )
        .unwrap()
    }

    #[test]
    fn parse_and_select_children() {
        let d = doc();
        let p = Path::parse("/issue/paper").unwrap();
        assert_eq!(p.select(&d).len(), 2);
        let p = Path::parse("/issue/paper[2]/title").unwrap();
        let hits = p.select(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(d.text_content(hits[0]), "B");
    }

    #[test]
    fn descendant_and_wildcards() {
        let d = doc();
        assert_eq!(Path::parse("//author").unwrap().select(&d).len(), 3);
        assert_eq!(Path::parse("/issue/paper[2]//author").unwrap().select(&d).len(), 2);
        assert_eq!(Path::parse("/issue/*").unwrap().select(&d).len(), 2);
        assert_eq!(Path::parse("//paper[1]/title/text()").unwrap().select(&d).len(), 1);
    }

    #[test]
    fn attributes() {
        let d = doc();
        assert_eq!(Path::parse("/issue/@volume").unwrap().select(&d).len(), 1);
        assert_eq!(Path::parse("//paper/@id").unwrap().select(&d).len(), 2);
        assert_eq!(Path::parse("//@*").unwrap().select(&d).len(), 3);
    }

    #[test]
    fn last_selects_the_final_match() {
        let d = doc();
        // the last paper of the issue
        let hits = Path::parse("/issue/paper[last()]/title").unwrap().select(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(d.text_content(hits[0]), "B");
        // last() is per context node: the last author of *each* authors element
        let hits = Path::parse("/issue/paper[2]/authors/author[last()]").unwrap().select(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(d.text_content(hits[0]), "Z");
        // on a descendant axis, last() picks the final match per context
        let hits = Path::parse("//author[last()]").unwrap().select(&d);
        assert_eq!(hits.iter().map(|&h| d.text_content(h)).collect::<Vec<_>>(), vec!["Z"]);
        // single match: [last()] equals [1]
        assert_eq!(
            Path::parse("/issue/paper[last()]").unwrap().select(&d),
            Path::parse("/issue/paper[2]").unwrap().select(&d)
        );
    }

    #[test]
    fn predicates_parse_into_the_enum() {
        let p = Path::parse("/a/b[last()]").unwrap();
        assert_eq!(p.steps[1].predicates, vec![Predicate::Last]);
        let p = Path::parse("/a/b[3]").unwrap();
        assert_eq!(p.steps[1].predicates, vec![Predicate::Index(3)]);
        let p = Path::parse("/a/b[@id=\"x\"]").unwrap();
        assert_eq!(p.steps[1].predicates, vec![Predicate::AttrEquals("id".into(), "x".into())]);
        let p = Path::parse("/a/b[@class='wide']").unwrap();
        assert_eq!(
            p.steps[1].predicates,
            vec![Predicate::AttrEquals("class".into(), "wide".into())]
        );
    }

    #[test]
    fn multiple_predicates_parse_in_source_order() {
        let p = Path::parse("/log/entry[@id=\"x\"][last()]").unwrap();
        assert_eq!(
            p.steps[1].predicates,
            vec![Predicate::AttrEquals("id".into(), "x".into()), Predicate::Last]
        );
        let p = Path::parse("/a/b[2][@k='v'][last()]").unwrap();
        assert_eq!(
            p.steps[1].predicates,
            vec![
                Predicate::Index(2),
                Predicate::AttrEquals("k".into(), "v".into()),
                Predicate::Last
            ]
        );
        // quoted brackets and slashes stay inside their predicate
        let p = Path::parse("/a/b[@href=\"x[1]/y\"][1]/c").unwrap();
        assert_eq!(p.steps.len(), 3);
        assert_eq!(
            p.steps[1].predicates,
            vec![Predicate::AttrEquals("href".into(), "x[1]/y".into()), Predicate::Index(1)]
        );
        // wildcard steps take predicates too
        let p = Path::parse("/issue/*[2]").unwrap();
        assert_eq!(p.steps[1].test, NodeTest::AnyElement);
        assert_eq!(p.steps[1].predicates, vec![Predicate::Index(2)]);
        // malformed runs are rejected
        assert!(Path::parse("/a/b[1]x[2]").is_err(), "junk between predicates");
        assert!(Path::parse("/a/b[1][").is_err(), "unclosed trailing predicate");
    }

    #[test]
    fn multiple_predicates_filter_left_to_right() {
        let d = parse_document(
            "<log><entry id=\"x\">one</entry><entry id=\"y\">two</entry>\
             <entry id=\"x\">three</entry><entry id=\"x\">four</entry></log>",
        )
        .unwrap();
        // the last of the @id="x" entries — not the last entry filtered by @id
        let hits = Path::parse("/log/entry[@id=\"x\"][last()]").unwrap().select(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(d.text_content(hits[0]), "four");
        // the second @id="x" entry
        let hits = Path::parse("/log/entry[@id=\"x\"][2]").unwrap().select(&d);
        assert_eq!(hits.iter().map(|&h| d.text_content(h)).collect::<Vec<_>>(), vec!["three"]);
        // order matters: [2][@id="x"] tests the second entry's attribute
        let hits = Path::parse("/log/entry[2][@id=\"x\"]").unwrap().select(&d);
        assert!(hits.is_empty(), "entry[2] has id=y");
        let hits = Path::parse("/log/entry[3][@id=\"x\"]").unwrap().select(&d);
        assert_eq!(d.text_content(hits[0]), "three");
        // composition collapses to a single node per chain
        let hits = Path::parse("/log/entry[@id=\"x\"][last()][1]").unwrap().select(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(d.text_content(hits[0]), "four");
    }

    #[test]
    fn wildcard_steps_compose_with_predicates() {
        let d = doc();
        // second child element of the issue, whatever its name
        let hits = Path::parse("/issue/*[2]").unwrap().select(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits, Path::parse("/issue/paper[2]").unwrap().select(&d));
        // wildcard + attribute predicate + position
        let hits = Path::parse("/issue/*[@id=\"p2\"][last()]/title").unwrap().select(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(d.text_content(hits[0]), "B");
        // wildcard on the descendant axis with a predicate chain
        let hits = Path::parse("//*[@id=\"p1\"][1]").unwrap().select(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits, Path::parse("/issue/paper[1]").unwrap().select(&d));
    }

    #[test]
    fn prefix_wildcards_parse_into_the_enum() {
        let p = Path::parse("/doc/dc:*").unwrap();
        assert_eq!(p.steps[1].test, NodeTest::ElementPrefix("dc".into()));
        let p = Path::parse("/doc/@xlink:*").unwrap();
        assert_eq!(p.steps[1].test, NodeTest::AttributePrefix("xlink".into()));
        // fully named steps keep their prefix literally
        let p = Path::parse("/doc/dc:title").unwrap();
        assert_eq!(p.steps[1].test, NodeTest::Element("dc:title".into()));
        // an empty prefix is malformed, not AnyElement
        assert!(Path::parse("/doc/:*").is_err());
        assert!(Path::parse("/doc/@:*").is_err());
    }

    #[test]
    fn prefix_wildcards_select_and_compose_with_predicates() {
        let d = parse_document(
            "<doc xlink:href=\"h\" id=\"i\"><dc:title lang=\"en\">A</dc:title>\
             <dc:creator>X</dc:creator><dc:title lang=\"de\">B</dc:title>\
             <title>plain</title><dcterms:issued>2011</dcterms:issued></doc>",
        )
        .unwrap();
        // ns:* matches exactly the dc-prefixed children — not the bare <title>,
        // not the dcterms one (prefixes match whole, not by substring)
        assert_eq!(Path::parse("/doc/dc:*").unwrap().select(&d).len(), 3);
        assert_eq!(Path::parse("/doc/dcterms:*").unwrap().select(&d).len(), 1);
        // mid-path composition with predicates, on both axes
        let hits = Path::parse("/doc/dc:*[@lang=\"de\"]/text()").unwrap().select(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(d.text_content(hits[0]), "B");
        let hits = Path::parse("//dc:*[last()]").unwrap().select(&d);
        assert_eq!(hits.iter().map(|&h| d.text_content(h)).collect::<Vec<_>>(), vec!["B"]);
        let hits = Path::parse("/doc/dc:*[2]").unwrap().select(&d);
        assert_eq!(d.text_content(hits[0]), "X");
        // attribute prefix wildcard: the xlink attribute but not the bare id
        assert_eq!(Path::parse("/doc/@xlink:*").unwrap().select(&d).len(), 1);
        assert_eq!(Path::parse("/doc/@*").unwrap().select(&d).len(), 2);
    }

    #[test]
    fn attribute_value_predicates_select_matching_elements() {
        let d = doc();
        let hits = Path::parse("/issue/paper[@id=\"p2\"]").unwrap().select(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits, Path::parse("/issue/paper[2]").unwrap().select(&d));
        // also on the descendant axis and deeper in the path
        let hits = Path::parse("//paper[@id=\"p1\"]/title").unwrap().select(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(d.text_content(hits[0]), "A");
        // value must match exactly; missing attributes never match
        assert!(Path::parse("/issue/paper[@id=\"p3\"]").unwrap().select(&d).is_empty());
        assert!(Path::parse("/issue/paper[@missing=\"x\"]").unwrap().select(&d).is_empty());
        // single quotes are accepted
        assert_eq!(Path::parse("/issue/paper[@id='p1']").unwrap().select(&d).len(), 1);
        // values may contain '/' and ']' — the step splitter is predicate-aware
        let p = Path::parse("/a/b[@href=\"http://x/y\"]/c").unwrap();
        assert_eq!(p.steps.len(), 3);
        assert_eq!(
            p.steps[1].predicates,
            vec![Predicate::AttrEquals("href".into(), "http://x/y".into())]
        );
        let p = Path::parse("/a/b[@id=\"a]b\"]").unwrap();
        assert_eq!(p.steps[1].predicates, vec![Predicate::AttrEquals("id".into(), "a]b".into())]);
        // the root step takes predicates too
        assert_eq!(Path::parse("/issue[@volume=\"30\"]/paper").unwrap().select(&d).len(), 2);
        assert!(Path::parse("/issue[@volume=\"31\"]/paper").unwrap().select(&d).is_empty());
    }

    #[test]
    fn comparison_predicates_parse_into_the_enum() {
        let p = Path::parse("/a/b[@n < 5]").unwrap();
        assert_eq!(
            p.steps[1].predicates,
            vec![Predicate::AttrCompare("n".into(), CmpOp::Lt, "5".into())]
        );
        let p = Path::parse("/a/b[@n<=5]").unwrap();
        assert_eq!(
            p.steps[1].predicates,
            vec![Predicate::AttrCompare("n".into(), CmpOp::Le, "5".into())]
        );
        let p = Path::parse("/a/b[@id != \"x\"]").unwrap();
        assert_eq!(
            p.steps[1].predicates,
            vec![Predicate::AttrCompare("id".into(), CmpOp::Ne, "x".into())]
        );
        let p = Path::parse("/a/b[@v >= 1.5]").unwrap();
        assert_eq!(
            p.steps[1].predicates,
            vec![Predicate::AttrCompare("v".into(), CmpOp::Ge, "1.5".into())]
        );
        let p = Path::parse("/a/b[@v > '2']").unwrap();
        assert_eq!(
            p.steps[1].predicates,
            vec![Predicate::AttrCompare("v".into(), CmpOp::Gt, "2".into())]
        );
        // a bare-numeric `=` compares numerically, a quoted `=` exactly
        let p = Path::parse("/a/b[@n = 5]").unwrap();
        assert_eq!(
            p.steps[1].predicates,
            vec![Predicate::AttrCompare("n".into(), CmpOp::Eq, "5".into())]
        );
        let p = Path::parse("/a/b[@n = \"5\"]").unwrap();
        assert_eq!(p.steps[1].predicates, vec![Predicate::AttrEquals("n".into(), "5".into())]);
        // quoted operands keep operator characters verbatim
        let p = Path::parse("/a/b[@id = \"x<y>=z\"]").unwrap();
        assert_eq!(
            p.steps[1].predicates,
            vec![Predicate::AttrEquals("id".into(), "x<y>=z".into())]
        );
    }

    #[test]
    fn comparison_predicates_select() {
        let d = parse_document(
            "<shop><item n=\"3\" id=\"a\"/><item n=\"4.5\" id=\"b\"/><item n=\"10\" id=\"c\"/>\
             <item id=\"d\"/></shop>",
        )
        .unwrap();
        let ids = |path: &str| -> Vec<String> {
            Path::parse(path)
                .unwrap()
                .select(&d)
                .iter()
                .map(|&h| {
                    d.attribute_by_name(h, "id")
                        .ok()
                        .flatten()
                        .and_then(|a| d.value(a).ok().flatten())
                        .unwrap()
                        .to_string()
                })
                .collect()
        };
        // numeric ordering, not lexicographic: "10" < "5" as strings, not as numbers
        assert_eq!(ids("/shop/item[@n < 5]"), vec!["a", "b"]);
        assert_eq!(ids("/shop/item[@n <= 4.5]"), vec!["a", "b"]);
        assert_eq!(ids("/shop/item[@n > 4]"), vec!["b", "c"]);
        assert_eq!(ids("/shop/item[@n >= 10]"), vec!["c"]);
        assert_eq!(ids("/shop/item[@n = 4.50]"), vec!["b"], "numeric =, not string");
        assert_eq!(ids("/shop/item[@n != 3]"), vec!["b", "c"], "missing attribute never matches");
        assert_eq!(ids("/shop/item[@id != \"a\"]"), vec!["b", "c", "d"], "string !=");
        // string ordering applies when either side is not numeric
        assert_eq!(ids("/shop/item[@id < \"c\"]"), vec!["a", "b"]);
        // comparisons compose with position predicates
        assert_eq!(ids("/shop/item[@n < 5][last()]"), vec!["b"]);
        assert_eq!(ids("/shop/item[@n > 99]"), Vec::<String>::new());
    }

    #[test]
    fn comparison_predicates_run_through_the_update_front_end() {
        // end-to-end: a comparison predicate selecting the target of an update
        let mut session = xdm::parser::parse_document(
            "<shop><item n=\"3\">x</item><item n=\"7\">y</item></shop>",
        )
        .unwrap();
        let labeling = xlabel::Labeling::assign(&session);
        let pul =
            crate::evaluate(&session, &labeling, "rename node /shop/item[@n > 5] as \"pricey\"")
                .unwrap();
        pul::apply_pul(&mut session, &pul, &pul::ApplyOptions::default()).unwrap();
        let out = xdm::writer::write_document(&session);
        assert!(out.contains("<pricey n=\"7\">y</pricey>"), "{out}");
        assert!(out.contains("<item n=\"3\">x</item>"), "{out}");
    }

    #[test]
    fn parse_errors() {
        assert!(Path::parse("relative/path").is_err());
        assert!(Path::parse("/a[").is_err());
        assert!(Path::parse("/a[x]").is_err());
        assert!(Path::parse("/a/").is_err());
        assert!(Path::parse("/a[0]").is_err(), "positions are 1-based");
        assert!(Path::parse("/a[last]").is_err(), "bare 'last' is not a function call");
        assert!(Path::parse("/a[@id]").is_err(), "attribute predicates need a comparison");
        assert!(Path::parse("/a[@id=x]").is_err(), "attribute values must be quoted");
        assert!(Path::parse("/a[@=\"x\"]").is_err(), "attribute name must be non-empty");
    }

    #[test]
    fn root_element_test_must_match() {
        let d = doc();
        assert!(Path::parse("/wrong/paper").unwrap().select(&d).is_empty());
        assert_eq!(Path::parse("/issue").unwrap().select(&d).len(), 1);
    }
}
