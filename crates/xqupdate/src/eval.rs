//! Parsing and evaluation of updating expressions, producing PULs.

use std::fmt;

use pul::{Pul, UpdateOp};
use xdm::parser::parse_fragment_with_first_id;
use xdm::{Document, NodeKind, Tree};
use xlabel::Labeling;

use crate::path::Path;

/// Errors raised while parsing or evaluating an updating expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XqError(pub String);

impl fmt::Display for XqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XQuery Update error: {}", self.0)
    }
}

impl std::error::Error for XqError {}

fn err(msg: impl Into<String>) -> XqError {
    XqError(msg.into())
}

/// Splits a compound expression on top-level commas (commas inside quotes or
/// inside `<…>` fragments do not separate statements).
fn split_statements(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut bracket = 0i32;
    let mut in_quote: Option<char> = None;
    let mut current = String::new();
    for c in src.chars() {
        match in_quote {
            Some(q) => {
                current.push(c);
                if c == q {
                    in_quote = None;
                }
            }
            None => match c {
                '"' | '\'' => {
                    in_quote = Some(c);
                    current.push(c);
                }
                '[' => {
                    bracket += 1;
                    current.push(c);
                }
                ']' => {
                    bracket -= 1;
                    current.push(c);
                }
                // '<'/'>' inside a [...] predicate are comparison operators,
                // not fragment markup — they must not skew the depth
                '<' if bracket == 0 => {
                    depth += 1;
                    current.push(c);
                }
                '>' if bracket == 0 => {
                    depth -= 1;
                    current.push(c);
                }
                ',' if depth <= 0 && bracket <= 0 => {
                    out.push(current.trim().to_string());
                    current.clear();
                }
                _ => current.push(c),
            },
        }
    }
    if !current.trim().is_empty() {
        out.push(current.trim().to_string());
    }
    out.into_iter().filter(|s| !s.is_empty()).collect()
}

fn unquote(s: &str) -> String {
    let s = s.trim();
    if (s.starts_with('"') && s.ends_with('"') && s.len() >= 2)
        || (s.starts_with('\'') && s.ends_with('\'') && s.len() >= 2)
    {
        s[1..s.len() - 1].to_string()
    } else {
        s.to_string()
    }
}

/// Splits `left <keyword> right` at the first occurrence of one of the
/// keywords that is outside any `<…>` fragment and outside quotes. When two
/// keywords match at the same position the longest one wins (so
/// `as first into` is preferred over `into`).
fn split_on_keyword<'a>(
    s: &'a str,
    keywords: &[&'static str],
) -> Option<(&'a str, &'static str, &'a str)> {
    let bytes = s.as_bytes();
    let mut depth = 0i32;
    let mut bracket = 0i32;
    let mut in_quote: Option<u8> = None;
    for i in 0..s.len() {
        match in_quote {
            Some(q) => {
                if bytes[i] == q {
                    in_quote = None;
                }
                continue;
            }
            None => match bytes[i] {
                b'"' | b'\'' => {
                    in_quote = Some(bytes[i]);
                    continue;
                }
                b'[' => bracket += 1,
                b']' => bracket -= 1,
                // inside a [...] predicate, '<' and '>' are comparison
                // operators ([@n > 5]), not fragment markup
                b'<' if bracket == 0 => depth += 1,
                b'>' if bracket == 0 => depth -= 1,
                _ => {}
            },
        }
        if depth != 0 || bracket != 0 {
            continue;
        }
        let mut best: Option<&'static str> = None;
        for kw in keywords {
            let pattern = format!(" {kw} ");
            if s[i..].starts_with(&pattern) && best.map(|b| b.len() < kw.len()).unwrap_or(true) {
                best = Some(kw);
            }
        }
        if let Some(kw) = best {
            let left = s[..i].trim();
            let right = s[i + kw.len() + 2..].trim();
            return Some((left, kw, right));
        }
    }
    None
}

/// The evaluation context: the document, its labeling, and the identifier
/// counter used for the nodes of inserted fragments.
struct Ctx<'a> {
    doc: &'a Document,
    next_content_id: u64,
}

impl<'a> Ctx<'a> {
    fn parse_fragments(&mut self, src: &str) -> Result<Vec<Tree>, XqError> {
        // Fragments are a whitespace-separated sequence of `<elem>…</elem>`,
        // `name="value"` attribute fragments or quoted strings (text nodes).
        let mut out = Vec::new();
        let src = src.trim();
        if src.is_empty() {
            return Ok(out);
        }
        // Try to parse a sequence of XML fragments; fall back to a single
        // attribute or text fragment.
        let mut rest = src;
        while !rest.is_empty() {
            rest = rest.trim_start();
            if rest.starts_with('<') {
                // find the end of this element fragment by balancing tags
                let mut depth = 0i32;
                let mut pos = 0usize;
                let mut end: Option<usize> = None;
                while pos < rest.len() {
                    let Some(lt) = rest[pos..].find('<') else { break };
                    let lt = pos + lt;
                    let Some(gt) = rest[lt..].find('>') else {
                        return Err(err(format!("unterminated tag in fragment '{rest}'")));
                    };
                    let gt = lt + gt;
                    let tag = &rest[lt..=gt];
                    if tag.starts_with("</") {
                        depth -= 1;
                    } else if tag.ends_with("/>") || tag.starts_with("<?") || tag.starts_with("<!")
                    {
                        // no depth change
                    } else {
                        depth += 1;
                    }
                    pos = gt + 1;
                    if depth == 0 {
                        end = Some(pos);
                        break;
                    }
                }
                let end = end.ok_or_else(|| err(format!("unbalanced fragment '{rest}'")))?;
                let frag = &rest[..end];
                let tree = parse_fragment_with_first_id(frag, self.next_content_id)
                    .map_err(|e| err(format!("invalid fragment '{frag}': {e}")))?;
                self.next_content_id += tree.size() as u64;
                out.push(tree);
                rest = &rest[end..];
            } else {
                // attribute or text fragment: take the remainder as one fragment
                let tree = parse_fragment_with_first_id(&unquote(rest), self.next_content_id)
                    .map_err(|e| err(format!("invalid fragment '{rest}': {e}")))?;
                self.next_content_id += tree.size() as u64;
                out.push(tree);
                break;
            }
        }
        Ok(out)
    }

    fn select(&self, path_src: &str) -> Result<Vec<xdm::NodeId>, XqError> {
        let path = Path::parse(path_src).map_err(err)?;
        let hits = path.select(self.doc);
        if hits.is_empty() {
            return Err(err(format!("the path '{path_src}' selects no node")));
        }
        Ok(hits)
    }

    fn eval_statement(&mut self, stmt: &str, pul: &mut Pul) -> Result<(), XqError> {
        let s = stmt.trim();
        let lower = s.to_lowercase();
        if lower.starts_with("insert node") {
            let rest = s["insert node".len()..].trim_start_matches('s').trim();
            let (frag_src, kw, path_src) = split_on_keyword(
                rest,
                &["as first into", "as last into", "into", "before", "after"],
            )
            .ok_or_else(|| err(format!("missing insertion position in '{s}'")))?;
            let content = self.parse_fragments(frag_src)?;
            if content.is_empty() {
                return Err(err(format!("nothing to insert in '{s}'")));
            }
            let all_attributes = content.iter().all(|t| t.root_kind() == NodeKind::Attribute);
            for target in self.select(path_src)? {
                let op = match kw {
                    "as first into" => UpdateOp::ins_first(target, content.clone()),
                    "as last into" => UpdateOp::ins_last(target, content.clone()),
                    "into" if all_attributes => UpdateOp::ins_attributes(target, content.clone()),
                    "into" => UpdateOp::ins_into(target, content.clone()),
                    "before" => UpdateOp::ins_before(target, content.clone()),
                    "after" => UpdateOp::ins_after(target, content.clone()),
                    other => return Err(err(format!("unsupported insertion position '{other}'"))),
                };
                pul.push(op);
            }
            Ok(())
        } else if lower.starts_with("delete node") {
            let path_src = s["delete node".len()..].trim_start_matches('s').trim();
            for target in self.select(path_src)? {
                pul.push(UpdateOp::delete(target));
            }
            Ok(())
        } else if lower.starts_with("replace value of node") {
            let rest = s["replace value of node".len()..].trim();
            let (path_src, _, value_src) = split_on_keyword(rest, &["with"])
                .ok_or_else(|| err(format!("missing 'with' in '{s}'")))?;
            let value = unquote(value_src);
            for target in self.select(path_src)? {
                pul.push(UpdateOp::replace_value(target, value.clone()));
            }
            Ok(())
        } else if lower.starts_with("replace node") {
            let rest = s["replace node".len()..].trim();
            let (path_src, _, frag_src) = split_on_keyword(rest, &["with"])
                .ok_or_else(|| err(format!("missing 'with' in '{s}'")))?;
            let content = self.parse_fragments(frag_src)?;
            for target in self.select(path_src)? {
                pul.push(UpdateOp::replace_node(target, content.clone()));
            }
            Ok(())
        } else if lower.starts_with("rename node") {
            let rest = s["rename node".len()..].trim();
            let (path_src, _, name_src) = split_on_keyword(rest, &["as"])
                .ok_or_else(|| err(format!("missing 'as' in '{s}'")))?;
            let name = unquote(name_src);
            for target in self.select(path_src)? {
                pul.push(UpdateOp::rename(target, name.clone()));
            }
            Ok(())
        } else {
            Err(err(format!("unrecognised updating expression: '{s}'")))
        }
    }
}

/// Evaluates an updating expression against a document, producing a PUL whose
/// operations carry the labels of their targets. Identifiers of inserted
/// fragments are assigned from `doc.next_id()` upwards (the producer-side
/// identifier space of §4.1).
pub fn evaluate(doc: &Document, labeling: &Labeling, source: &str) -> Result<Pul, XqError> {
    let mut ctx = Ctx { doc, next_content_id: doc.next_id() + 1_000 };
    let mut pul = Pul::new();
    for stmt in split_statements(source) {
        ctx.eval_statement(&stmt, &mut pul)?;
    }
    pul.attach_labels(labeling);
    pul.check_compatible()
        .map_err(|e| err(format!("the expression produces an invalid PUL: {e}")))?;
    Ok(pul)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pul::apply::{apply_pul, ApplyOptions};
    use pul::OpName;
    use xdm::parser::parse_document;
    use xdm::writer::write_document;

    fn setup() -> (Document, Labeling) {
        let doc = parse_document(
            "<issue volume=\"30\"><paper><title>A</title><author>X</author></paper>\
             <paper><title>B</title><authors><author>Y</author></authors></paper></issue>",
        )
        .unwrap();
        let labeling = Labeling::assign(&doc);
        (doc, labeling)
    }

    #[test]
    fn insert_variants() {
        let (doc, labels) = setup();
        let pul = evaluate(
            &doc,
            &labels,
            "insert nodes <author>G.Guerrini</author> as last into /issue/paper[2]/authors, \
             insert nodes <year>2004</year> before /issue/paper[1]/title, \
             insert nodes lastPage=\"134\" into /issue/paper[1], \
             insert nodes <note>n</note> into /issue/paper[2]",
        )
        .unwrap();
        let names: Vec<OpName> = pul.ops().iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            vec![OpName::InsLast, OpName::InsBefore, OpName::InsAttributes, OpName::InsInto]
        );
        // labels attached to targets
        for op in pul.ops() {
            assert!(pul.label(op.target()).is_some());
        }
        let mut d = doc.clone();
        apply_pul(&mut d, &pul, &ApplyOptions::default()).unwrap();
        let xml = write_document(&d);
        assert!(xml.contains("G.Guerrini"));
        assert!(xml.contains("<year>2004</year><title>A</title>"));
        assert!(xml.contains("lastPage=\"134\""));
    }

    #[test]
    fn comparison_predicates_mix_with_fragments_and_statement_lists() {
        // '<'/'>' appear both as comparison operators (inside predicates) and
        // as fragment markup in the same source; the splitters must not
        // confuse the two
        let doc = parse_document(
            "<shop><item n=\"3\">x</item><item n=\"7\">y</item><item n=\"9\">z</item></shop>",
        )
        .unwrap();
        let labels = Labeling::assign(&doc);
        let pul = evaluate(
            &doc,
            &labels,
            "rename node /shop/item[@n > 5][last()] as \"top\", \
             insert nodes <tag>cheap</tag> as last into /shop/item[@n < 5], \
             delete node /shop/item[@n != 3][1]",
        )
        .unwrap();
        let names: Vec<OpName> = pul.ops().iter().map(|o| o.name()).collect();
        assert_eq!(names, vec![OpName::Rename, OpName::InsLast, OpName::Delete]);
        let mut d = doc.clone();
        apply_pul(&mut d, &pul, &ApplyOptions::default()).unwrap();
        let xml = write_document(&d);
        assert!(xml.contains("<top n=\"9\">z</top>"), "{xml}");
        assert!(xml.contains("x<tag>cheap</tag>"), "{xml}");
        assert!(!xml.contains(">y<"), "item n=7 deleted: {xml}");
    }

    #[test]
    fn delete_replace_rename() {
        let (doc, labels) = setup();
        let pul = evaluate(
            &doc,
            &labels,
            "delete nodes /issue/paper[1]/author, \
             replace node /issue/paper[2]/title with <title>New B</title>, \
             replace value of node /issue/paper[1]/title/text() with \"New A\", \
             rename node /issue/paper[1] as \"article\"",
        )
        .unwrap();
        assert_eq!(pul.len(), 4);
        let mut d = doc.clone();
        apply_pul(&mut d, &pul, &ApplyOptions::default()).unwrap();
        let xml = write_document(&d);
        assert!(xml.contains("<article"));
        assert!(xml.contains("New A"));
        assert!(xml.contains("New B"));
        assert!(!xml.contains("<author>X</author>"));
    }

    #[test]
    fn last_predicate_in_updating_expressions() {
        let (doc, labels) = setup();
        // append after the last author of the second paper's authors element
        let pul = evaluate(
            &doc,
            &labels,
            "insert nodes <author>New</author> after \
             /issue/paper[last()]/authors/author[last()], \
             delete node /issue/paper[1]/author[last()], \
             rename node /issue/paper[last()]/title as \"heading\"",
        )
        .unwrap();
        assert_eq!(pul.len(), 3);
        let mut d = doc.clone();
        apply_pul(&mut d, &pul, &ApplyOptions::default()).unwrap();
        let xml = write_document(&d);
        assert!(xml.contains("<author>Y</author><author>New</author>"));
        assert!(!xml.contains("<author>X</author>"), "last author of paper 1 deleted");
        assert!(xml.contains("<heading>B</heading>"));
    }

    #[test]
    fn attribute_value_predicates_in_updating_expressions() {
        let doc = parse_document(
            "<issue volume=\"30\"><paper id=\"p1\"><title>A</title></paper>\
             <paper id=\"p2\"><title>B</title></paper></issue>",
        )
        .unwrap();
        let labels = Labeling::assign(&doc);
        let pul = evaluate(
            &doc,
            &labels,
            "rename node /issue/paper[@id=\"p2\"]/title as \"heading\", \
             insert nodes <note>chosen</note> as last into //paper[@id='p1'], \
             delete node /issue/paper[@id=\"p2\"]",
        )
        .unwrap();
        assert_eq!(pul.len(), 3);
        let mut d = doc.clone();
        apply_pul(&mut d, &pul, &ApplyOptions::default()).unwrap();
        let xml = write_document(&d);
        assert!(xml.contains("<note>chosen</note>"), "{xml}");
        assert!(!xml.contains("p2"), "the second paper is gone: {xml}");
        // an unmatched attribute predicate selects nothing — an eval error
        assert!(evaluate(&doc, &labels, "delete node /issue/paper[@id=\"p9\"]").is_err());
    }

    #[test]
    fn multiple_predicates_in_updating_expressions() {
        let doc = parse_document(
            "<log><entry id=\"x\">one</entry><entry id=\"y\">two</entry>\
             <entry id=\"x\">three</entry></log>",
        )
        .unwrap();
        let labels = Labeling::assign(&doc);
        let pul = evaluate(
            &doc,
            &labels,
            "rename node /log/entry[@id=\"x\"][last()] as \"latest\", \
             insert nodes <mark/> as last into /log/entry[@id=\"x\"][1]",
        )
        .unwrap();
        assert_eq!(pul.len(), 2, "each predicate chain selects exactly one entry");
        let mut d = doc.clone();
        apply_pul(&mut d, &pul, &ApplyOptions::default()).unwrap();
        let xml = write_document(&d);
        assert!(xml.contains("<latest id=\"x\">three</latest>"), "{xml}");
        assert!(xml.contains("<entry id=\"x\">one<mark/></entry>"), "{xml}");
    }

    #[test]
    fn wildcard_steps_with_predicates_in_updating_expressions() {
        let (doc, labels) = setup();
        // `*` composes with positional and attribute predicates
        let pul = evaluate(
            &doc,
            &labels,
            "rename node /issue/*[2]/title as \"heading\", \
             delete node /issue/*[1][last()]/author",
        )
        .unwrap();
        assert_eq!(pul.len(), 2);
        let mut d = doc.clone();
        apply_pul(&mut d, &pul, &ApplyOptions::default()).unwrap();
        let xml = write_document(&d);
        assert!(xml.contains("<heading>B</heading>"), "{xml}");
        assert!(!xml.contains("<author>X</author>"), "{xml}");
    }

    #[test]
    fn multiple_targets_expand_to_multiple_ops() {
        let (doc, labels) = setup();
        let pul = evaluate(&doc, &labels, "rename node //title as \"heading\"").unwrap();
        assert_eq!(pul.len(), 2);
    }

    #[test]
    fn errors_are_reported() {
        let (doc, labels) = setup();
        assert!(evaluate(&doc, &labels, "frobnicate /issue").is_err());
        assert!(evaluate(&doc, &labels, "delete nodes /nowhere/to/be/found").is_err());
        assert!(evaluate(&doc, &labels, "insert nodes <a/> /issue/paper[1]").is_err());
        // incompatible PUL: two renames of the same node
        assert!(evaluate(
            &doc,
            &labels,
            "rename node /issue/paper[1] as \"a\", rename node /issue/paper[1] as \"b\""
        )
        .is_err());
    }

    #[test]
    fn produced_pul_roundtrips_through_the_exchange_format() {
        let (doc, labels) = setup();
        let pul = evaluate(
            &doc,
            &labels,
            "insert nodes <author>M.Mesiti</author> after /issue/paper[2]/authors/author[1]",
        )
        .unwrap();
        let xml = pul::xmlio::pul_to_xml(&pul);
        let back = pul::xmlio::pul_from_xml(&xml).unwrap();
        assert_eq!(back.len(), pul.len());
        assert!(back.label(pul.ops()[0].target()).is_some());
    }
}
