//! # xqupdate — a miniature XQuery Update Facility front-end
//!
//! The paper decouples *PUL production* (evaluating an XQuery Update expression
//! against a document) from *PUL execution*. The authors modified the Qizx
//! engine to emit PULs; since Qizx is not available, this crate provides a
//! compact, self-contained substitute: a parser and evaluator for the five
//! updating expressions of the XQuery Update Facility over a small XPath
//! subset, producing [`pul::Pul`] values ready to be serialized, exchanged and
//! reasoned upon.
//!
//! Supported syntax (one or more statements separated by `,`):
//!
//! ```text
//! insert nodes <author>G.Guerrini</author> as last into /issue/paper[2]/authors
//! insert nodes initPage="132" into /issue/paper[1]
//! insert nodes <year>2004</year> before /issue/paper[1]/title
//! delete nodes //paper[2]/abstract
//! replace node /issue/paper[1]/title with <title>New</title>
//! replace value of node /issue/paper[1]/title/text() with "Report on ..."
//! rename node /issue/paper[1] as "article"
//! ```
//!
//! Paths support `/` and `//` steps, element name tests, `*`, `@name`, `@*`,
//! `text()`, positional predicates `[n]` / `[last()]`, and attribute
//! comparisons `[@name = "v"]`, `[@n < 5]`, `[@id != 'x']` (operators `=`,
//! `!=`, `<`, `<=`, `>`, `>=`; numeric when both sides are numbers, string
//! otherwise).

pub mod eval;
pub mod path;

pub use eval::{evaluate, XqError};
pub use path::{CmpOp, Path, Predicate};
