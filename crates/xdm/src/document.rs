//! Arena-backed XML document: the `(V, γ, λ, ν)` structure of §2.1.
//!
//! The [`Document`] owns all its nodes in an arena keyed by [`NodeId`].
//! Identifiers are never reused: the arena keeps a monotonically increasing
//! counter, and explicit identifiers (e.g. the numbering of Figure 1 in the
//! paper, or identifiers read back from an *identified* serialization) bump the
//! counter past themselves.
//!
//! The arena itself is an [`IdSlab`]: identifiers are assigned sequentially,
//! so node lookup — the innermost operation of every traversal and of every
//! Table-1 predicate evaluated against the document — is a dense array index
//! rather than a hash probe.

use std::collections::HashMap;

use crate::error::XdmError;
use crate::node::{NodeData, NodeId, NodeKind};
use crate::slab::IdSlab;
use crate::Result;

/// Relative position of two nodes in document order (the `≺` relation of
/// Table 1, made total for convenience).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderRel {
    /// The first node strictly precedes the second in document order.
    Before,
    /// The two identifiers denote the same node.
    Same,
    /// The first node strictly follows the second in document order.
    After,
    /// At least one of the nodes is not attached to the tree (no order defined).
    Unrelated,
}

/// An XML document (or, more generally, a rooted node arena).
///
/// The root is normally an element node; standalone fragments used as update
/// operation parameters reuse the same machinery through [`crate::Tree`].
#[derive(Debug, Clone, Default)]
pub struct Document {
    nodes: IdSlab<NodeData>,
    root: Option<NodeId>,
    next_id: u64,
}

impl Document {
    /// Creates an empty document with no nodes.
    pub fn new() -> Self {
        Document { nodes: IdSlab::new(), root: None, next_id: 1 }
    }

    /// Creates an empty document whose fresh identifiers start at `first_id`.
    pub fn with_first_id(first_id: u64) -> Self {
        Document { nodes: IdSlab::new(), root: None, next_id: first_id.max(1) }
    }

    // ------------------------------------------------------------------
    // identifiers
    // ------------------------------------------------------------------

    /// Returns the next identifier that would be assigned to a fresh node.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Reserves and returns a fresh identifier.
    pub fn fresh_id(&mut self) -> NodeId {
        let id = NodeId::new(self.next_id);
        self.next_id += 1;
        id
    }

    fn note_explicit_id(&mut self, id: NodeId) {
        if id.as_u64() >= self.next_id {
            self.next_id = id.as_u64() + 1;
        }
    }

    // ------------------------------------------------------------------
    // allocation
    // ------------------------------------------------------------------

    fn insert_node(&mut self, id: NodeId, data: NodeData) -> Result<NodeId> {
        if self.nodes.contains(id) {
            return Err(XdmError::DuplicateNodeId(id));
        }
        self.note_explicit_id(id);
        self.nodes.insert(id, data);
        Ok(id)
    }

    /// Allocates a detached element node with a fresh identifier.
    pub fn new_element(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.fresh_id();
        self.nodes.insert(id, NodeData::element(name));
        id
    }

    /// Allocates a detached attribute node with a fresh identifier.
    pub fn new_attribute(&mut self, name: impl Into<String>, value: impl Into<String>) -> NodeId {
        let id = self.fresh_id();
        self.nodes.insert(id, NodeData::attribute(name, value));
        id
    }

    /// Allocates a detached text node with a fresh identifier.
    pub fn new_text(&mut self, value: impl Into<String>) -> NodeId {
        let id = self.fresh_id();
        self.nodes.insert(id, NodeData::text(value));
        id
    }

    /// Allocates a detached element node with an explicit identifier.
    pub fn new_element_with_id(
        &mut self,
        id: impl Into<NodeId>,
        name: impl Into<String>,
    ) -> Result<NodeId> {
        self.insert_node(id.into(), NodeData::element(name))
    }

    /// Allocates a detached attribute node with an explicit identifier.
    pub fn new_attribute_with_id(
        &mut self,
        id: impl Into<NodeId>,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> Result<NodeId> {
        self.insert_node(id.into(), NodeData::attribute(name, value))
    }

    /// Allocates a detached text node with an explicit identifier.
    pub fn new_text_with_id(
        &mut self,
        id: impl Into<NodeId>,
        value: impl Into<String>,
    ) -> Result<NodeId> {
        self.insert_node(id.into(), NodeData::text(value))
    }

    // ------------------------------------------------------------------
    // root management
    // ------------------------------------------------------------------

    /// Returns the root node, if any (the `R` auxiliary function of §2.1).
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Returns the root node or an error if the document is empty.
    pub fn require_root(&self) -> Result<NodeId> {
        self.root.ok_or(XdmError::NoRoot)
    }

    /// Sets the root of the document to an existing (detached) node.
    pub fn set_root(&mut self, id: NodeId) -> Result<()> {
        if !self.nodes.contains(id) {
            return Err(XdmError::NodeNotFound(id));
        }
        self.root = Some(id);
        Ok(())
    }

    // ------------------------------------------------------------------
    // accessors
    // ------------------------------------------------------------------

    /// Returns `true` if the identifier denotes a node of this document arena.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains(id)
    }

    /// Returns the node data for `id`.
    pub fn node(&self, id: NodeId) -> Result<&NodeData> {
        self.nodes.get(id).ok_or(XdmError::NodeNotFound(id))
    }

    fn node_mut(&mut self, id: NodeId) -> Result<&mut NodeData> {
        self.nodes.get_mut(id).ok_or(XdmError::NodeNotFound(id))
    }

    /// Returns τ(v), the kind of the node.
    pub fn kind(&self, id: NodeId) -> Result<NodeKind> {
        Ok(self.node(id)?.kind)
    }

    /// Returns λ(v), the name of an element or attribute node.
    pub fn name(&self, id: NodeId) -> Result<Option<&str>> {
        Ok(self.node(id)?.name.as_deref())
    }

    /// Returns ν(v), the value of a text or attribute node.
    pub fn value(&self, id: NodeId) -> Result<Option<&str>> {
        Ok(self.node(id)?.value.as_deref())
    }

    /// Returns the parent of a node, if attached.
    pub fn parent(&self, id: NodeId) -> Result<Option<NodeId>> {
        Ok(self.node(id)?.parent)
    }

    /// Returns the ordered non-attribute children of a node.
    pub fn children(&self, id: NodeId) -> Result<&[NodeId]> {
        Ok(&self.node(id)?.children)
    }

    /// Returns the attribute nodes of an element.
    pub fn attributes(&self, id: NodeId) -> Result<&[NodeId]> {
        Ok(&self.node(id)?.attributes)
    }

    /// Looks up an attribute of `element` by name.
    pub fn attribute_by_name(&self, element: NodeId, name: &str) -> Result<Option<NodeId>> {
        for &a in self.attributes(element)? {
            if self.name(a)? == Some(name) {
                return Ok(Some(a));
            }
        }
        Ok(None)
    }

    /// Returns the number of nodes currently stored in the arena.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over all node identifiers in the arena (arbitrary order).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys()
    }

    /// Returns the index of `child` within its parent's child list.
    pub fn index_in_parent(&self, child: NodeId) -> Result<Option<usize>> {
        let Some(p) = self.parent(child)? else { return Ok(None) };
        let data = self.node(p)?;
        Ok(data.children.iter().position(|&c| c == child))
    }

    /// Returns the left sibling of a (non-attribute) node, if any.
    pub fn left_sibling(&self, id: NodeId) -> Result<Option<NodeId>> {
        let Some(p) = self.parent(id)? else { return Ok(None) };
        let siblings = self.children(p)?;
        match siblings.iter().position(|&c| c == id) {
            Some(0) | None => Ok(None),
            Some(i) => Ok(Some(siblings[i - 1])),
        }
    }

    /// Returns the right sibling of a (non-attribute) node, if any.
    pub fn right_sibling(&self, id: NodeId) -> Result<Option<NodeId>> {
        let Some(p) = self.parent(id)? else { return Ok(None) };
        let siblings = self.children(p)?;
        match siblings.iter().position(|&c| c == id) {
            Some(i) if i + 1 < siblings.len() => Ok(Some(siblings[i + 1])),
            _ => Ok(None),
        }
    }

    /// `v1 /c v2` — `child` is a non-attribute child of `parent`.
    pub fn is_child_of(&self, child: NodeId, parent: NodeId) -> bool {
        self.node(parent).map(|d| d.children.contains(&child)).unwrap_or(false)
    }

    /// `v1 /a v2` — `attr` is an attribute of `element`.
    pub fn is_attribute_of(&self, attr: NodeId, element: NodeId) -> bool {
        self.node(element).map(|d| d.attributes.contains(&attr)).unwrap_or(false)
    }

    /// `v1 //d v2` — `desc` is a (strict) descendant of `anc`, attributes included.
    pub fn is_descendant_of(&self, desc: NodeId, anc: NodeId) -> bool {
        let mut cur = desc;
        loop {
            match self.parent(cur) {
                Ok(Some(p)) => {
                    if p == anc {
                        return true;
                    }
                    cur = p;
                }
                _ => return false,
            }
        }
    }

    /// Depth of the node (root has depth 0); `None` if detached from the root.
    pub fn depth(&self, id: NodeId) -> Result<Option<usize>> {
        let Some(root) = self.root else { return Ok(None) };
        let mut cur = id;
        let mut depth = 0usize;
        loop {
            if cur == root {
                return Ok(Some(depth));
            }
            match self.parent(cur)? {
                Some(p) => {
                    cur = p;
                    depth += 1;
                }
                None => return Ok(None),
            }
        }
    }

    /// Returns the path of ancestors from the root down to (and including) `id`,
    /// or `None` if the node is not attached under the root.
    fn root_path(&self, id: NodeId) -> Option<Vec<NodeId>> {
        let root = self.root?;
        let mut path = vec![id];
        let mut cur = id;
        while cur != root {
            match self.parent(cur).ok()? {
                Some(p) => {
                    path.push(p);
                    cur = p;
                }
                None => return None,
            }
        }
        path.reverse();
        Some(path)
    }

    /// Compares two nodes in document order (`≺` of Table 1).
    ///
    /// Attributes are ordered after their owner element and before its
    /// children; attributes of the same element are ordered by their position
    /// in the attribute list (their relative order is not semantically
    /// relevant, but a total order is convenient for canonical forms).
    pub fn document_order(&self, a: NodeId, b: NodeId) -> OrderRel {
        if a == b {
            return OrderRel::Same;
        }
        let (Some(pa), Some(pb)) = (self.root_path(a), self.root_path(b)) else {
            return OrderRel::Unrelated;
        };
        // Find first diverging ancestor.
        let common = pa.iter().zip(pb.iter()).take_while(|(x, y)| x == y).count();
        if common == pa.len() {
            // a is an ancestor of b → a comes first
            return OrderRel::Before;
        }
        if common == pb.len() {
            return OrderRel::After;
        }
        let parent = pa[common - 1];
        let ca = pa[common];
        let cb = pb[common];
        let rank = |c: NodeId| -> (u8, usize) {
            let data = self.node(parent).expect("parent exists");
            if let Some(i) = data.attributes.iter().position(|&x| x == c) {
                (0, i)
            } else if let Some(i) = data.children.iter().position(|&x| x == c) {
                (1, i)
            } else {
                (2, 0)
            }
        };
        if rank(ca) < rank(cb) {
            OrderRel::Before
        } else {
            OrderRel::After
        }
    }

    /// `v1 ≺ v2` — strict document-order precedence.
    pub fn precedes(&self, a: NodeId, b: NodeId) -> bool {
        self.document_order(a, b) == OrderRel::Before
    }

    // ------------------------------------------------------------------
    // traversal
    // ------------------------------------------------------------------

    /// Preorder traversal of the subtree rooted at `start` (attributes visited
    /// right after their owner element, before its children).
    pub fn preorder(&self, start: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            if let Ok(data) = self.node(id) {
                out.push(id);
                // push children in reverse so they pop in order; attributes first
                for &c in data.children.iter().rev() {
                    stack.push(c);
                }
                for &a in data.attributes.iter().rev() {
                    stack.push(a);
                }
            }
        }
        out
    }

    /// Preorder traversal of the whole document.
    pub fn preorder_from_root(&self) -> Vec<NodeId> {
        match self.root {
            Some(r) => self.preorder(r),
            None => Vec::new(),
        }
    }

    /// All descendants (strict) of `id`, in preorder.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut v = self.preorder(id);
        if !v.is_empty() {
            v.remove(0);
        }
        v
    }

    /// Finds the first element with the given name in preorder, if any.
    pub fn find_element(&self, name: &str) -> Option<NodeId> {
        self.preorder_from_root().into_iter().find(|&id| {
            self.kind(id) == Ok(NodeKind::Element) && self.name(id).ok().flatten() == Some(name)
        })
    }

    /// Finds all elements with the given name, in preorder.
    pub fn find_elements(&self, name: &str) -> Vec<NodeId> {
        self.preorder_from_root()
            .into_iter()
            .filter(|&id| {
                self.kind(id) == Ok(NodeKind::Element) && self.name(id).ok().flatten() == Some(name)
            })
            .collect()
    }

    /// Concatenated text content of the subtree rooted at `id`.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.preorder(id) {
            if self.kind(n) == Ok(NodeKind::Text) {
                if let Ok(Some(v)) = self.value(n) {
                    out.push_str(v);
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // mutation
    // ------------------------------------------------------------------

    fn check_child_insertable(&self, parent: NodeId, child: NodeId) -> Result<()> {
        let pk = self.kind(parent)?;
        let ck = self.kind(child)?;
        if pk != NodeKind::Element {
            return Err(XdmError::InvalidStructure(format!(
                "cannot insert children under a {pk} node ({parent})"
            )));
        }
        if ck == NodeKind::Attribute {
            return Err(XdmError::InvalidStructure(format!(
                "attribute node {child} cannot be inserted as a child; use add_attribute"
            )));
        }
        if self.node(child)?.parent.is_some() {
            return Err(XdmError::InvalidStructure(format!("node {child} is already attached")));
        }
        Ok(())
    }

    /// Appends `child` as the last child of `parent`.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        self.check_child_insertable(parent, child)?;
        self.node_mut(parent)?.children.push(child);
        self.node_mut(child)?.parent = Some(parent);
        Ok(())
    }

    /// Inserts `child` as the first child of `parent`.
    pub fn insert_first_child(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        self.insert_child_at(parent, 0, child)
    }

    /// Inserts `child` at position `index` in `parent`'s child list.
    pub fn insert_child_at(&mut self, parent: NodeId, index: usize, child: NodeId) -> Result<()> {
        self.check_child_insertable(parent, child)?;
        let data = self.node_mut(parent)?;
        let index = index.min(data.children.len());
        data.children.insert(index, child);
        self.node_mut(child)?.parent = Some(parent);
        Ok(())
    }

    /// Inserts `node` immediately before `anchor` (which must be attached).
    pub fn insert_before(&mut self, anchor: NodeId, node: NodeId) -> Result<()> {
        let parent = self.parent(anchor)?.ok_or(XdmError::Detached(anchor))?;
        let idx = self.index_in_parent(anchor)?.ok_or_else(|| {
            XdmError::InvalidStructure(format!("{anchor} not in parent's children"))
        })?;
        self.insert_child_at(parent, idx, node)
    }

    /// Inserts `node` immediately after `anchor` (which must be attached).
    pub fn insert_after(&mut self, anchor: NodeId, node: NodeId) -> Result<()> {
        let parent = self.parent(anchor)?.ok_or(XdmError::Detached(anchor))?;
        let idx = self.index_in_parent(anchor)?.ok_or_else(|| {
            XdmError::InvalidStructure(format!("{anchor} not in parent's children"))
        })?;
        self.insert_child_at(parent, idx + 1, node)
    }

    /// Attaches an attribute node to an element.
    pub fn add_attribute(&mut self, element: NodeId, attr: NodeId) -> Result<()> {
        if self.kind(element)? != NodeKind::Element {
            return Err(XdmError::InvalidStructure(format!("{element} is not an element")));
        }
        if self.kind(attr)? != NodeKind::Attribute {
            return Err(XdmError::InvalidStructure(format!("{attr} is not an attribute node")));
        }
        if self.node(attr)?.parent.is_some() {
            return Err(XdmError::InvalidStructure(format!("attribute {attr} already attached")));
        }
        self.node_mut(element)?.attributes.push(attr);
        self.node_mut(attr)?.parent = Some(element);
        Ok(())
    }

    /// Detaches `id` from its parent (keeping it and its subtree in the arena).
    pub fn detach(&mut self, id: NodeId) -> Result<()> {
        let Some(p) = self.parent(id)? else {
            if self.root == Some(id) {
                self.root = None;
            }
            return Ok(());
        };
        let parent = self.node_mut(p)?;
        parent.children.retain(|&c| c != id);
        parent.attributes.retain(|&c| c != id);
        self.node_mut(id)?.parent = None;
        Ok(())
    }

    /// Removes `id` and its entire subtree from the arena. Identifiers are not
    /// reused afterwards.
    pub fn remove_subtree(&mut self, id: NodeId) -> Result<()> {
        self.detach(id)?;
        for n in self.preorder(id) {
            self.nodes.remove(n);
        }
        if self.root == Some(id) {
            self.root = None;
        }
        Ok(())
    }

    /// Renames an element or attribute node (the `ren` primitive's effect).
    pub fn rename(&mut self, id: NodeId, name: impl Into<String>) -> Result<()> {
        let data = self.node_mut(id)?;
        match data.kind {
            NodeKind::Element | NodeKind::Attribute => {
                data.name = Some(name.into());
                Ok(())
            }
            NodeKind::Text => {
                Err(XdmError::InvalidStructure(format!("cannot rename text node {id}")))
            }
        }
    }

    /// Sets the value of a text or attribute node (the `repV` primitive's effect).
    pub fn set_value(&mut self, id: NodeId, value: impl Into<String>) -> Result<()> {
        let data = self.node_mut(id)?;
        match data.kind {
            NodeKind::Text | NodeKind::Attribute => {
                data.value = Some(value.into());
                Ok(())
            }
            NodeKind::Element => {
                Err(XdmError::InvalidStructure(format!("cannot set value of element {id}")))
            }
        }
    }

    /// Removes all non-attribute children of `element` from the arena.
    pub fn clear_children(&mut self, element: NodeId) -> Result<()> {
        let children: Vec<NodeId> = self.children(element)?.to_vec();
        for c in children {
            self.remove_subtree(c)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // grafting (deep copy across arenas)
    // ------------------------------------------------------------------

    /// Deep-copies the subtree rooted at `src_root` from `src` into this arena.
    ///
    /// When `preserve_ids` is `true` the source identifiers are kept (an error
    /// is returned if any clashes with an existing identifier); otherwise fresh
    /// identifiers are assigned. Returns the identifier of the copied root in
    /// this arena, along with the mapping from source ids to new ids.
    pub fn graft(
        &mut self,
        src: &Document,
        src_root: NodeId,
        preserve_ids: bool,
    ) -> Result<(NodeId, HashMap<NodeId, NodeId>)> {
        let mut mapping: HashMap<NodeId, NodeId> = HashMap::new();
        let order = src.preorder(src_root);
        // First allocate all nodes.
        for &sid in &order {
            let sdata = src.node(sid)?;
            let nid = if preserve_ids {
                if self.nodes.contains(sid) {
                    return Err(XdmError::DuplicateNodeId(sid));
                }
                self.note_explicit_id(sid);
                sid
            } else {
                self.fresh_id()
            };
            let mut data = sdata.clone();
            data.parent = None;
            data.children.clear();
            data.attributes.clear();
            self.nodes.insert(nid, data);
            mapping.insert(sid, nid);
        }
        // Then wire structure.
        for &sid in &order {
            let sdata = src.node(sid)?;
            let nid = mapping[&sid];
            for &a in &sdata.attributes {
                if let Some(&na) = mapping.get(&a) {
                    self.add_attribute(nid, na)?;
                }
            }
            for &c in &sdata.children {
                if let Some(&nc) = mapping.get(&c) {
                    self.append_child(nid, nc)?;
                }
            }
        }
        Ok((mapping[&src_root], mapping))
    }

    /// Extracts the subtree rooted at `root` as a standalone document (deep
    /// copy, identifiers preserved).
    pub fn extract_subtree(&self, root: NodeId) -> Result<Document> {
        let mut out = Document::new();
        let (new_root, _) = out.graft(self, root, true)?;
        out.set_root(new_root)?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // identifier assignment
    // ------------------------------------------------------------------

    /// Re-assigns identifiers to all nodes of the document in preorder,
    /// starting at `start`. This is the "agreed algorithm" of §4.1 with which
    /// all PUL producers can deterministically identify the nodes of the
    /// authoritative document. Returns the mapping old → new.
    pub fn assign_preorder_ids(&mut self, start: u64) -> HashMap<NodeId, NodeId> {
        let order = self.preorder_from_root();
        let mut mapping = HashMap::with_capacity(order.len());
        for (i, &old) in order.iter().enumerate() {
            mapping.insert(old, NodeId::new(start + i as u64));
        }
        let mut new_nodes = IdSlab::with_capacity(self.nodes.len());
        for (old, mut data) in std::mem::take(&mut self.nodes).into_entries() {
            let new_id = *mapping.get(&old).unwrap_or(&old);
            data.parent = data.parent.map(|p| *mapping.get(&p).unwrap_or(&p));
            for c in &mut data.children {
                *c = *mapping.get(c).unwrap_or(c);
            }
            for a in &mut data.attributes {
                *a = *mapping.get(a).unwrap_or(a);
            }
            new_nodes.insert(new_id, data);
        }
        self.nodes = new_nodes;
        self.root = self.root.map(|r| *mapping.get(&r).unwrap_or(&r));
        self.next_id = self.nodes.keys().map(|k| k.as_u64()).max().unwrap_or(0) + 1;
        mapping
    }

    /// Structural equality of two subtrees ignoring node identifiers: same
    /// kinds, names, values, same child sequences and the same attribute sets
    /// (attribute order is irrelevant).
    pub fn subtree_equal(&self, a: NodeId, other: &Document, b: NodeId) -> bool {
        let (Ok(da), Ok(db)) = (self.node(a), other.node(b)) else { return false };
        if da.kind != db.kind || da.name != db.name || da.value != db.value {
            return false;
        }
        if da.children.len() != db.children.len() || da.attributes.len() != db.attributes.len() {
            return false;
        }
        // attributes: compare as multisets of (name, value) plus recursively equal
        let mut bt_attrs: Vec<NodeId> = db.attributes.clone();
        for &ca in &da.attributes {
            let pos = bt_attrs.iter().position(|&cb| self.subtree_equal(ca, other, cb));
            match pos {
                Some(i) => {
                    bt_attrs.remove(i);
                }
                None => return false,
            }
        }
        da.children
            .iter()
            .zip(db.children.iter())
            .all(|(&ca, &cb)| self.subtree_equal(ca, other, cb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId, NodeId, NodeId) {
        // <issue vol="30"><article><title>T</title></article><article/></issue>
        let mut d = Document::new();
        let issue = d.new_element("issue");
        let vol = d.new_attribute("vol", "30");
        let a1 = d.new_element("article");
        let t = d.new_element("title");
        let txt = d.new_text("T");
        let a2 = d.new_element("article");
        d.set_root(issue).unwrap();
        d.add_attribute(issue, vol).unwrap();
        d.append_child(issue, a1).unwrap();
        d.append_child(a1, t).unwrap();
        d.append_child(t, txt).unwrap();
        d.append_child(issue, a2).unwrap();
        (d, issue, a1, t, txt, a2)
    }

    #[test]
    fn build_and_navigate() {
        let (d, issue, a1, t, txt, a2) = sample();
        assert_eq!(d.root(), Some(issue));
        assert_eq!(d.children(issue).unwrap(), &[a1, a2]);
        assert_eq!(d.parent(t).unwrap(), Some(a1));
        assert_eq!(d.kind(txt).unwrap(), NodeKind::Text);
        assert_eq!(d.name(a1).unwrap(), Some("article"));
        assert_eq!(d.value(txt).unwrap(), Some("T"));
        assert_eq!(d.node_count(), 6);
        assert!(d.is_child_of(a1, issue));
        assert!(!d.is_child_of(txt, issue));
        assert!(d.is_descendant_of(txt, issue));
        assert!(!d.is_descendant_of(issue, txt));
        assert_eq!(d.depth(txt).unwrap(), Some(3));
        assert_eq!(d.left_sibling(a2).unwrap(), Some(a1));
        assert_eq!(d.left_sibling(a1).unwrap(), None);
        assert_eq!(d.right_sibling(a1).unwrap(), Some(a2));
    }

    #[test]
    fn attribute_accessors() {
        let (d, issue, ..) = sample();
        let vol = d.attribute_by_name(issue, "vol").unwrap().unwrap();
        assert_eq!(d.value(vol).unwrap(), Some("30"));
        assert!(d.is_attribute_of(vol, issue));
        assert_eq!(d.attribute_by_name(issue, "missing").unwrap(), None);
    }

    #[test]
    fn document_order_relations() {
        let (d, issue, a1, t, txt, a2) = sample();
        assert_eq!(d.document_order(issue, a1), OrderRel::Before);
        assert_eq!(d.document_order(a1, a2), OrderRel::Before);
        assert_eq!(d.document_order(a2, txt), OrderRel::After);
        assert_eq!(d.document_order(t, t), OrderRel::Same);
        assert!(d.precedes(a1, a2));
        let vol = d.attribute_by_name(issue, "vol").unwrap().unwrap();
        // attributes precede children of the same element
        assert_eq!(d.document_order(vol, a1), OrderRel::Before);
        assert_eq!(d.document_order(issue, vol), OrderRel::Before);
    }

    #[test]
    fn preorder_traversal() {
        let (d, issue, a1, t, txt, a2) = sample();
        let vol = d.attribute_by_name(issue, "vol").unwrap().unwrap();
        assert_eq!(d.preorder_from_root(), vec![issue, vol, a1, t, txt, a2]);
        assert_eq!(d.descendants(a1), vec![t, txt]);
    }

    #[test]
    fn mutation_insert_variants() {
        let (mut d, issue, a1, _t, _txt, a2) = sample();
        let x = d.new_element("x");
        d.insert_before(a2, x).unwrap();
        assert_eq!(d.children(issue).unwrap(), &[a1, x, a2]);
        let y = d.new_element("y");
        d.insert_after(a2, y).unwrap();
        assert_eq!(d.children(issue).unwrap(), &[a1, x, a2, y]);
        let z = d.new_element("z");
        d.insert_first_child(issue, z).unwrap();
        assert_eq!(d.children(issue).unwrap(), &[z, a1, x, a2, y]);
    }

    #[test]
    fn mutation_errors() {
        let (mut d, issue, a1, _t, txt, _a2) = sample();
        let e = d.new_element("e");
        assert!(d.append_child(txt, e).is_err(), "text nodes cannot have children");
        let a = d.new_attribute("k", "v");
        assert!(d.append_child(issue, a).is_err(), "attributes are not children");
        assert!(d.add_attribute(txt, a).is_err(), "attributes attach to elements only");
        // already-attached node cannot be attached again
        assert!(d.append_child(issue, a1).is_err());
        assert!(d.rename(txt, "x").is_err());
        assert!(d.set_value(issue, "x").is_err());
        assert!(d.node(NodeId::new(9999)).is_err());
    }

    #[test]
    fn remove_subtree_drops_ids_permanently() {
        let (mut d, issue, a1, t, txt, a2) = sample();
        let before = d.next_id();
        d.remove_subtree(a1).unwrap();
        assert!(!d.contains(a1));
        assert!(!d.contains(t));
        assert!(!d.contains(txt));
        assert!(d.contains(a2));
        assert_eq!(d.children(issue).unwrap(), &[a2]);
        // ids are never reused
        let fresh = d.new_element("fresh");
        assert!(fresh.as_u64() >= before);
        assert_ne!(fresh, a1);
    }

    #[test]
    fn detach_root_clears_root() {
        let (mut d, issue, ..) = sample();
        d.detach(issue).unwrap();
        assert_eq!(d.root(), None);
    }

    #[test]
    fn rename_and_set_value() {
        let (mut d, issue, _a1, _t, txt, _a2) = sample();
        d.rename(issue, "proceedings").unwrap();
        assert_eq!(d.name(issue).unwrap(), Some("proceedings"));
        d.set_value(txt, "New title").unwrap();
        assert_eq!(d.value(txt).unwrap(), Some("New title"));
        let vol = d.attribute_by_name(issue, "vol").unwrap().unwrap();
        d.set_value(vol, "31").unwrap();
        assert_eq!(d.value(vol).unwrap(), Some("31"));
        d.rename(vol, "volume").unwrap();
        assert_eq!(d.name(vol).unwrap(), Some("volume"));
    }

    #[test]
    fn clear_children_removes_content() {
        let (mut d, _issue, a1, t, txt, _a2) = sample();
        d.clear_children(a1).unwrap();
        assert!(d.children(a1).unwrap().is_empty());
        assert!(!d.contains(t));
        assert!(!d.contains(txt));
    }

    #[test]
    fn explicit_ids_and_duplicates() {
        let mut d = Document::new();
        let a = d.new_element_with_id(10u64, "a").unwrap();
        assert_eq!(a.as_u64(), 10);
        assert!(d.new_element_with_id(10u64, "b").is_err());
        // next fresh id skips past explicit ids
        let b = d.new_element("b");
        assert_eq!(b.as_u64(), 11);
    }

    #[test]
    fn graft_with_fresh_and_preserved_ids() {
        let (src, _issue, a1, ..) = sample();
        let mut dst = Document::new();
        let root = dst.new_element("holder");
        dst.set_root(root).unwrap();
        let (copy, mapping) = dst.graft(&src, a1, false).unwrap();
        dst.append_child(root, copy).unwrap();
        assert_eq!(mapping.len(), 3);
        assert!(dst.subtree_equal(copy, &src, a1));

        let mut dst2 = Document::with_first_id(1000);
        let (copy2, _) = dst2.graft(&src, a1, true).unwrap();
        assert_eq!(copy2, a1, "identifiers preserved");
        // preserving again clashes
        assert!(dst2.graft(&src, a1, true).is_err());
    }

    #[test]
    fn extract_subtree_preserves_ids() {
        let (d, _issue, a1, t, txt, _a2) = sample();
        let sub = d.extract_subtree(a1).unwrap();
        assert_eq!(sub.root(), Some(a1));
        assert!(sub.contains(t));
        assert!(sub.contains(txt));
        assert_eq!(sub.node_count(), 3);
    }

    #[test]
    fn preorder_id_assignment() {
        let (mut d, ..) = sample();
        let mapping = d.assign_preorder_ids(1);
        assert_eq!(mapping.len(), 6);
        let order = d.preorder_from_root();
        let ids: Vec<u64> = order.iter().map(|n| n.as_u64()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(d.next_id(), 7);
        // structure survives
        let root = d.root().unwrap();
        assert_eq!(d.name(root).unwrap(), Some("issue"));
        assert_eq!(d.children(root).unwrap().len(), 2);
    }

    #[test]
    fn subtree_equal_ignores_attribute_order() {
        let mut d1 = Document::new();
        let e1 = d1.new_element("e");
        let x1 = d1.new_attribute("x", "1");
        let y1 = d1.new_attribute("y", "2");
        d1.set_root(e1).unwrap();
        d1.add_attribute(e1, x1).unwrap();
        d1.add_attribute(e1, y1).unwrap();

        let mut d2 = Document::new();
        let e2 = d2.new_element("e");
        let y2 = d2.new_attribute("y", "2");
        let x2 = d2.new_attribute("x", "1");
        d2.set_root(e2).unwrap();
        d2.add_attribute(e2, y2).unwrap();
        d2.add_attribute(e2, x2).unwrap();

        assert!(d1.subtree_equal(e1, &d2, e2));

        let mut d3 = Document::new();
        let e3 = d3.new_element("e");
        let x3 = d3.new_attribute("x", "DIFFERENT");
        d3.set_root(e3).unwrap();
        d3.add_attribute(e3, x3).unwrap();
        assert!(!d1.subtree_equal(e1, &d3, e3));
    }
}
