//! Arena-backed XML document: the `(V, γ, λ, ν)` structure of §2.1.
//!
//! The [`Document`] owns all its nodes in an arena keyed by [`NodeId`].
//! Identifiers are never reused: the arena keeps a monotonically increasing
//! counter, and explicit identifiers (e.g. the numbering of Figure 1 in the
//! paper, or identifiers read back from an *identified* serialization) bump the
//! counter past themselves.
//!
//! The arena itself is an [`IdSlab`]: identifiers are assigned sequentially,
//! so node lookup — the innermost operation of every traversal and of every
//! Table-1 predicate evaluated against the document — is a dense array index
//! rather than a hash probe.

use std::collections::HashMap;

use crate::error::XdmError;
use crate::journal::{ArenaState, DocEntry, Journal, JournalMark};
use crate::node::{NodeData, NodeId, NodeKind};
use crate::slab::IdSlab;
use crate::Result;

/// Relative position of two nodes in document order (the `≺` relation of
/// Table 1, made total for convenience).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderRel {
    /// The first node strictly precedes the second in document order.
    Before,
    /// The two identifiers denote the same node.
    Same,
    /// The first node strictly follows the second in document order.
    After,
    /// At least one of the nodes is not attached to the tree (no order defined).
    Unrelated,
}

/// A cheaply clonable, immutable shared view of a [`Document`] (see
/// [`Document::to_shared`]). Snapshot readers hold one of these; the live
/// session keeps mutating its own copy.
pub type SharedDocument = std::sync::Arc<Document>;

/// An XML document (or, more generally, a rooted node arena).
///
/// The root is normally an element node; standalone fragments used as update
/// operation parameters reuse the same machinery through [`crate::Tree`].
#[derive(Debug, Clone, Default)]
pub struct Document {
    nodes: IdSlab<NodeData>,
    root: Option<NodeId>,
    next_id: u64,
    /// Inverse-entry log, present while a journal scope is active (see
    /// [`crate::journal`]). Every mutator records the inverse of its effect
    /// here so that `journal_rewind` can undo a partial application in
    /// O(change) — the replacement for whole-document snapshot clones.
    journal: Option<Journal>,
}

impl Document {
    /// Creates an empty document with no nodes.
    pub fn new() -> Self {
        Document { nodes: IdSlab::new(), root: None, next_id: 1, journal: None }
    }

    /// Creates an empty document whose fresh identifiers start at `first_id`.
    pub fn with_first_id(first_id: u64) -> Self {
        Document { nodes: IdSlab::new(), root: None, next_id: first_id.max(1), journal: None }
    }

    // ------------------------------------------------------------------
    // journal scopes
    // ------------------------------------------------------------------

    /// Whether a journal scope is currently active.
    pub fn journal_is_active(&self) -> bool {
        self.journal.is_some()
    }

    /// Opens (or enters) a journal scope: activates inverse recording if it is
    /// not already active and returns the current position. Passing the mark
    /// to [`journal_rewind`](Document::journal_rewind) undoes everything
    /// recorded after this call; nested scopes simply take later marks.
    pub fn journal_mark(&mut self) -> JournalMark {
        let journal = self.journal.get_or_insert_with(Journal::default);
        JournalMark(journal.entries.len())
    }

    /// Number of inverse entries currently recorded (0 when inactive).
    pub fn journal_len(&self) -> usize {
        self.journal.as_ref().map(|j| j.entries.len()).unwrap_or(0)
    }

    /// Undoes every mutation recorded after `mark` by replaying the inverse
    /// entries in reverse order. The journal stays active (the entries before
    /// the mark are untouched); a no-op when no journal is active.
    pub fn journal_rewind(&mut self, mark: JournalMark) {
        let Some(mut journal) = self.journal.take() else { return };
        while journal.entries.len() > mark.0 {
            let entry = journal.entries.pop().expect("non-empty journal");
            self.undo(entry);
        }
        self.journal = Some(journal);
    }

    /// Closes the journal scope: recording stops and all inverse entries are
    /// dropped. Called by whoever *activated* the journal once the outcome is
    /// settled (changes kept, or already rewound).
    pub fn journal_discard(&mut self) {
        self.journal = None;
    }

    #[inline]
    fn record(&mut self, entry: DocEntry) {
        if let Some(journal) = &mut self.journal {
            journal.entries.push(entry);
        }
    }

    fn undo(&mut self, entry: DocEntry) {
        match entry {
            DocEntry::Forget(id) => {
                self.nodes.remove(id);
            }
            DocEntry::Restore(id, data) => {
                self.nodes.insert(id, *data);
            }
            DocEntry::ChildRemove { parent, index } => {
                let data = self.nodes.get_mut(parent).expect("journal: parent exists");
                data.children.remove(index);
            }
            DocEntry::ChildInsert { parent, index, child } => {
                let data = self.nodes.get_mut(parent).expect("journal: parent exists");
                data.children.insert(index, child);
            }
            DocEntry::AttrRemove { element, index } => {
                let data = self.nodes.get_mut(element).expect("journal: element exists");
                data.attributes.remove(index);
            }
            DocEntry::AttrInsert { element, index, attr } => {
                let data = self.nodes.get_mut(element).expect("journal: element exists");
                data.attributes.insert(index, attr);
            }
            DocEntry::Parent { node, old } => {
                self.nodes.get_mut(node).expect("journal: node exists").parent = old;
            }
            DocEntry::Name { node, old } => {
                self.nodes.get_mut(node).expect("journal: node exists").name = old;
            }
            DocEntry::Value { node, old } => {
                self.nodes.get_mut(node).expect("journal: node exists").value = old;
            }
            DocEntry::Root(old) => self.root = old,
            DocEntry::NextId(old) => self.next_id = old,
            DocEntry::RestoreAll(state) => {
                self.nodes = state.nodes;
                self.root = state.root;
                self.next_id = state.next_id;
            }
        }
    }

    /// Replaces the whole document (arena, root, identifier counter) with
    /// `new`, keeping the journal scope: inside a scope the previous state is
    /// *moved* into a single journal entry — O(1), no clone — so a rewind
    /// restores it. Used by the streaming commit, which materialises the
    /// updated document by re-parsing its own output stream.
    pub fn replace_with(&mut self, new: Document) {
        let old = ArenaState {
            nodes: std::mem::take(&mut self.nodes),
            root: self.root.take(),
            next_id: self.next_id,
        };
        self.nodes = new.nodes;
        self.root = new.root;
        self.next_id = new.next_id;
        self.record(DocEntry::RestoreAll(Box::new(old)));
    }

    // ------------------------------------------------------------------
    // identifiers
    // ------------------------------------------------------------------

    /// Returns the next identifier that would be assigned to a fresh node.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Reserves and returns a fresh identifier.
    pub fn fresh_id(&mut self) -> NodeId {
        let id = NodeId::new(self.next_id);
        self.record(DocEntry::NextId(self.next_id));
        self.next_id += 1;
        id
    }

    fn note_explicit_id(&mut self, id: NodeId) {
        if id.as_u64() >= self.next_id {
            self.record(DocEntry::NextId(self.next_id));
            self.next_id = id.as_u64() + 1;
        }
    }

    /// Raises the fresh-identifier counter to at least `min_next` (a no-op when
    /// it is already there). A sharded executor uses this as an *identifier
    /// fence*: before a shard applies its slice of a commit, its counter is
    /// lifted past every identifier minted by the shards that applied before
    /// it, so fresh identifiers stay globally unique across shard documents.
    /// Journaled like any other mutation, so a rollback restores the counter.
    pub fn reserve_ids(&mut self, min_next: u64) {
        if min_next > self.next_id {
            self.record(DocEntry::NextId(self.next_id));
            self.next_id = min_next;
        }
    }

    // ------------------------------------------------------------------
    // allocation
    // ------------------------------------------------------------------

    /// Stores a node in the arena, recording the inverse. Every arena insert
    /// goes through here so that journal scopes see it.
    fn arena_insert(&mut self, id: NodeId, data: NodeData) {
        self.nodes.insert(id, data);
        self.record(DocEntry::Forget(id));
    }

    /// Removes a node from the arena, recording the inverse (the node data is
    /// moved into the journal, not cloned).
    fn arena_remove(&mut self, id: NodeId) {
        if self.journal.is_some() {
            if let Some(data) = self.nodes.remove(id) {
                self.record(DocEntry::Restore(id, Box::new(data)));
            }
        } else {
            self.nodes.remove(id);
        }
    }

    fn insert_node(&mut self, id: NodeId, data: NodeData) -> Result<NodeId> {
        if self.nodes.contains(id) {
            return Err(XdmError::DuplicateNodeId(id));
        }
        self.note_explicit_id(id);
        self.arena_insert(id, data);
        Ok(id)
    }

    /// Allocates a detached element node with a fresh identifier.
    pub fn new_element(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.fresh_id();
        self.arena_insert(id, NodeData::element(name));
        id
    }

    /// Allocates a detached attribute node with a fresh identifier.
    pub fn new_attribute(&mut self, name: impl Into<String>, value: impl Into<String>) -> NodeId {
        let id = self.fresh_id();
        self.arena_insert(id, NodeData::attribute(name, value));
        id
    }

    /// Allocates a detached text node with a fresh identifier.
    pub fn new_text(&mut self, value: impl Into<String>) -> NodeId {
        let id = self.fresh_id();
        self.arena_insert(id, NodeData::text(value));
        id
    }

    /// Allocates a detached element node with an explicit identifier.
    pub fn new_element_with_id(
        &mut self,
        id: impl Into<NodeId>,
        name: impl Into<String>,
    ) -> Result<NodeId> {
        self.insert_node(id.into(), NodeData::element(name))
    }

    /// Allocates a detached attribute node with an explicit identifier.
    pub fn new_attribute_with_id(
        &mut self,
        id: impl Into<NodeId>,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> Result<NodeId> {
        self.insert_node(id.into(), NodeData::attribute(name, value))
    }

    /// Allocates a detached text node with an explicit identifier.
    pub fn new_text_with_id(
        &mut self,
        id: impl Into<NodeId>,
        value: impl Into<String>,
    ) -> Result<NodeId> {
        self.insert_node(id.into(), NodeData::text(value))
    }

    // ------------------------------------------------------------------
    // root management
    // ------------------------------------------------------------------

    /// Returns the root node, if any (the `R` auxiliary function of §2.1).
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Returns the root node or an error if the document is empty.
    pub fn require_root(&self) -> Result<NodeId> {
        self.root.ok_or(XdmError::NoRoot)
    }

    /// Sets the root of the document to an existing (detached) node.
    pub fn set_root(&mut self, id: NodeId) -> Result<()> {
        if !self.nodes.contains(id) {
            return Err(XdmError::NodeNotFound(id));
        }
        self.record(DocEntry::Root(self.root));
        self.root = Some(id);
        Ok(())
    }

    // ------------------------------------------------------------------
    // accessors
    // ------------------------------------------------------------------

    /// Returns `true` if the identifier denotes a node of this document arena.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains(id)
    }

    /// Returns the node data for `id`.
    pub fn node(&self, id: NodeId) -> Result<&NodeData> {
        self.nodes.get(id).ok_or(XdmError::NodeNotFound(id))
    }

    fn node_mut(&mut self, id: NodeId) -> Result<&mut NodeData> {
        self.nodes.get_mut(id).ok_or(XdmError::NodeNotFound(id))
    }

    /// Returns τ(v), the kind of the node.
    pub fn kind(&self, id: NodeId) -> Result<NodeKind> {
        Ok(self.node(id)?.kind)
    }

    /// Returns λ(v), the name of an element or attribute node.
    pub fn name(&self, id: NodeId) -> Result<Option<&str>> {
        Ok(self.node(id)?.name.as_deref())
    }

    /// Returns ν(v), the value of a text or attribute node.
    pub fn value(&self, id: NodeId) -> Result<Option<&str>> {
        Ok(self.node(id)?.value.as_deref())
    }

    /// Returns the parent of a node, if attached.
    pub fn parent(&self, id: NodeId) -> Result<Option<NodeId>> {
        Ok(self.node(id)?.parent)
    }

    /// Returns the ordered non-attribute children of a node.
    pub fn children(&self, id: NodeId) -> Result<&[NodeId]> {
        Ok(&self.node(id)?.children)
    }

    /// Returns the attribute nodes of an element.
    pub fn attributes(&self, id: NodeId) -> Result<&[NodeId]> {
        Ok(&self.node(id)?.attributes)
    }

    /// Looks up an attribute of `element` by name.
    pub fn attribute_by_name(&self, element: NodeId, name: &str) -> Result<Option<NodeId>> {
        for &a in self.attributes(element)? {
            if self.name(a)? == Some(name) {
                return Ok(Some(a));
            }
        }
        Ok(None)
    }

    /// Returns the number of nodes currently stored in the arena.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Slot-occupancy statistics of the node arena (live/dead dense slots,
    /// spilled entries): the churn observable for long-lived sessions, since
    /// removed identifiers are never reused and their slots stay dead.
    pub fn slab_stats(&self) -> crate::slab::SlabStats {
        self.nodes.stats()
    }

    /// Iterates over all node identifiers in the arena (arbitrary order).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys()
    }

    /// Returns the index of `child` within its parent's child list.
    pub fn index_in_parent(&self, child: NodeId) -> Result<Option<usize>> {
        let Some(p) = self.parent(child)? else { return Ok(None) };
        let data = self.node(p)?;
        Ok(data.children.iter().position(|&c| c == child))
    }

    /// Returns the left sibling of a (non-attribute) node, if any.
    pub fn left_sibling(&self, id: NodeId) -> Result<Option<NodeId>> {
        let Some(p) = self.parent(id)? else { return Ok(None) };
        let siblings = self.children(p)?;
        match siblings.iter().position(|&c| c == id) {
            Some(0) | None => Ok(None),
            Some(i) => Ok(Some(siblings[i - 1])),
        }
    }

    /// Returns the right sibling of a (non-attribute) node, if any.
    pub fn right_sibling(&self, id: NodeId) -> Result<Option<NodeId>> {
        let Some(p) = self.parent(id)? else { return Ok(None) };
        let siblings = self.children(p)?;
        match siblings.iter().position(|&c| c == id) {
            Some(i) if i + 1 < siblings.len() => Ok(Some(siblings[i + 1])),
            _ => Ok(None),
        }
    }

    /// `v1 /c v2` — `child` is a non-attribute child of `parent`.
    pub fn is_child_of(&self, child: NodeId, parent: NodeId) -> bool {
        self.node(parent).map(|d| d.children.contains(&child)).unwrap_or(false)
    }

    /// `v1 /a v2` — `attr` is an attribute of `element`.
    pub fn is_attribute_of(&self, attr: NodeId, element: NodeId) -> bool {
        self.node(element).map(|d| d.attributes.contains(&attr)).unwrap_or(false)
    }

    /// `v1 //d v2` — `desc` is a (strict) descendant of `anc`, attributes included.
    pub fn is_descendant_of(&self, desc: NodeId, anc: NodeId) -> bool {
        let mut cur = desc;
        loop {
            match self.parent(cur) {
                Ok(Some(p)) => {
                    if p == anc {
                        return true;
                    }
                    cur = p;
                }
                _ => return false,
            }
        }
    }

    /// Depth of the node (root has depth 0); `None` if detached from the root.
    pub fn depth(&self, id: NodeId) -> Result<Option<usize>> {
        let Some(root) = self.root else { return Ok(None) };
        let mut cur = id;
        let mut depth = 0usize;
        loop {
            if cur == root {
                return Ok(Some(depth));
            }
            match self.parent(cur)? {
                Some(p) => {
                    cur = p;
                    depth += 1;
                }
                None => return Ok(None),
            }
        }
    }

    /// Returns the path of ancestors from the root down to (and including) `id`,
    /// or `None` if the node is not attached under the root.
    fn root_path(&self, id: NodeId) -> Option<Vec<NodeId>> {
        let root = self.root?;
        let mut path = vec![id];
        let mut cur = id;
        while cur != root {
            match self.parent(cur).ok()? {
                Some(p) => {
                    path.push(p);
                    cur = p;
                }
                None => return None,
            }
        }
        path.reverse();
        Some(path)
    }

    /// Compares two nodes in document order (`≺` of Table 1).
    ///
    /// Attributes are ordered after their owner element and before its
    /// children; attributes of the same element are ordered by their position
    /// in the attribute list (their relative order is not semantically
    /// relevant, but a total order is convenient for canonical forms).
    pub fn document_order(&self, a: NodeId, b: NodeId) -> OrderRel {
        if a == b {
            return OrderRel::Same;
        }
        let (Some(pa), Some(pb)) = (self.root_path(a), self.root_path(b)) else {
            return OrderRel::Unrelated;
        };
        // Find first diverging ancestor.
        let common = pa.iter().zip(pb.iter()).take_while(|(x, y)| x == y).count();
        if common == pa.len() {
            // a is an ancestor of b → a comes first
            return OrderRel::Before;
        }
        if common == pb.len() {
            return OrderRel::After;
        }
        let parent = pa[common - 1];
        let ca = pa[common];
        let cb = pb[common];
        let rank = |c: NodeId| -> (u8, usize) {
            let data = self.node(parent).expect("parent exists");
            if let Some(i) = data.attributes.iter().position(|&x| x == c) {
                (0, i)
            } else if let Some(i) = data.children.iter().position(|&x| x == c) {
                (1, i)
            } else {
                (2, 0)
            }
        };
        if rank(ca) < rank(cb) {
            OrderRel::Before
        } else {
            OrderRel::After
        }
    }

    /// `v1 ≺ v2` — strict document-order precedence.
    pub fn precedes(&self, a: NodeId, b: NodeId) -> bool {
        self.document_order(a, b) == OrderRel::Before
    }

    // ------------------------------------------------------------------
    // traversal
    // ------------------------------------------------------------------

    /// Preorder traversal of the subtree rooted at `start` (attributes visited
    /// right after their owner element, before its children).
    pub fn preorder(&self, start: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            if let Ok(data) = self.node(id) {
                out.push(id);
                // push children in reverse so they pop in order; attributes first
                for &c in data.children.iter().rev() {
                    stack.push(c);
                }
                for &a in data.attributes.iter().rev() {
                    stack.push(a);
                }
            }
        }
        out
    }

    /// Preorder traversal of the whole document.
    pub fn preorder_from_root(&self) -> Vec<NodeId> {
        match self.root {
            Some(r) => self.preorder(r),
            None => Vec::new(),
        }
    }

    /// All descendants (strict) of `id`, in preorder.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut v = self.preorder(id);
        if !v.is_empty() {
            v.remove(0);
        }
        v
    }

    /// Finds the first element with the given name in preorder, if any.
    pub fn find_element(&self, name: &str) -> Option<NodeId> {
        self.preorder_from_root().into_iter().find(|&id| {
            self.kind(id) == Ok(NodeKind::Element) && self.name(id).ok().flatten() == Some(name)
        })
    }

    /// Finds all elements with the given name, in preorder.
    pub fn find_elements(&self, name: &str) -> Vec<NodeId> {
        self.preorder_from_root()
            .into_iter()
            .filter(|&id| {
                self.kind(id) == Ok(NodeKind::Element) && self.name(id).ok().flatten() == Some(name)
            })
            .collect()
    }

    /// Concatenated text content of the subtree rooted at `id`.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.preorder(id) {
            if self.kind(n) == Ok(NodeKind::Text) {
                if let Ok(Some(v)) = self.value(n) {
                    out.push_str(v);
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // mutation
    // ------------------------------------------------------------------

    fn check_child_insertable(&self, parent: NodeId, child: NodeId) -> Result<()> {
        let pk = self.kind(parent)?;
        let ck = self.kind(child)?;
        if pk != NodeKind::Element {
            return Err(XdmError::InvalidStructure(format!(
                "cannot insert children under a {pk} node ({parent})"
            )));
        }
        if ck == NodeKind::Attribute {
            return Err(XdmError::InvalidStructure(format!(
                "attribute node {child} cannot be inserted as a child; use add_attribute"
            )));
        }
        if self.node(child)?.parent.is_some() {
            return Err(XdmError::InvalidStructure(format!("node {child} is already attached")));
        }
        Ok(())
    }

    /// Appends `child` as the last child of `parent`.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        self.check_child_insertable(parent, child)?;
        let data = self.node_mut(parent)?;
        let index = data.children.len();
        data.children.push(child);
        self.record(DocEntry::ChildRemove { parent, index });
        self.node_mut(child)?.parent = Some(parent);
        self.record(DocEntry::Parent { node: child, old: None });
        Ok(())
    }

    /// Inserts `child` as the first child of `parent`.
    pub fn insert_first_child(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        self.insert_child_at(parent, 0, child)
    }

    /// Inserts `child` at position `index` in `parent`'s child list.
    pub fn insert_child_at(&mut self, parent: NodeId, index: usize, child: NodeId) -> Result<()> {
        self.check_child_insertable(parent, child)?;
        let data = self.node_mut(parent)?;
        let index = index.min(data.children.len());
        data.children.insert(index, child);
        self.record(DocEntry::ChildRemove { parent, index });
        self.node_mut(child)?.parent = Some(parent);
        self.record(DocEntry::Parent { node: child, old: None });
        Ok(())
    }

    /// Inserts `node` immediately before `anchor` (which must be attached).
    pub fn insert_before(&mut self, anchor: NodeId, node: NodeId) -> Result<()> {
        let parent = self.parent(anchor)?.ok_or(XdmError::Detached(anchor))?;
        let idx = self.index_in_parent(anchor)?.ok_or_else(|| {
            XdmError::InvalidStructure(format!("{anchor} not in parent's children"))
        })?;
        self.insert_child_at(parent, idx, node)
    }

    /// Inserts `node` immediately after `anchor` (which must be attached).
    pub fn insert_after(&mut self, anchor: NodeId, node: NodeId) -> Result<()> {
        let parent = self.parent(anchor)?.ok_or(XdmError::Detached(anchor))?;
        let idx = self.index_in_parent(anchor)?.ok_or_else(|| {
            XdmError::InvalidStructure(format!("{anchor} not in parent's children"))
        })?;
        self.insert_child_at(parent, idx + 1, node)
    }

    /// Attaches an attribute node to an element.
    pub fn add_attribute(&mut self, element: NodeId, attr: NodeId) -> Result<()> {
        if self.kind(element)? != NodeKind::Element {
            return Err(XdmError::InvalidStructure(format!("{element} is not an element")));
        }
        if self.kind(attr)? != NodeKind::Attribute {
            return Err(XdmError::InvalidStructure(format!("{attr} is not an attribute node")));
        }
        if self.node(attr)?.parent.is_some() {
            return Err(XdmError::InvalidStructure(format!("attribute {attr} already attached")));
        }
        let data = self.node_mut(element)?;
        let index = data.attributes.len();
        data.attributes.push(attr);
        self.record(DocEntry::AttrRemove { element, index });
        self.node_mut(attr)?.parent = Some(element);
        self.record(DocEntry::Parent { node: attr, old: None });
        Ok(())
    }

    /// Detaches `id` from its parent (keeping it and its subtree in the arena).
    pub fn detach(&mut self, id: NodeId) -> Result<()> {
        let Some(p) = self.parent(id)? else {
            if self.root == Some(id) {
                self.record(DocEntry::Root(Some(id)));
                self.root = None;
            }
            return Ok(());
        };
        let parent = self.node_mut(p)?;
        let entry = if let Some(i) = parent.children.iter().position(|&c| c == id) {
            parent.children.remove(i);
            Some(DocEntry::ChildInsert { parent: p, index: i, child: id })
        } else if let Some(i) = parent.attributes.iter().position(|&c| c == id) {
            parent.attributes.remove(i);
            Some(DocEntry::AttrInsert { element: p, index: i, attr: id })
        } else {
            None
        };
        if let Some(entry) = entry {
            self.record(entry);
        }
        self.node_mut(id)?.parent = None;
        self.record(DocEntry::Parent { node: id, old: Some(p) });
        Ok(())
    }

    /// Removes `id` and its entire subtree from the arena. Identifiers are not
    /// reused afterwards.
    pub fn remove_subtree(&mut self, id: NodeId) -> Result<()> {
        self.detach(id)?;
        for n in self.preorder(id) {
            self.arena_remove(n);
        }
        if self.root == Some(id) {
            self.record(DocEntry::Root(Some(id)));
            self.root = None;
        }
        Ok(())
    }

    /// Renames an element or attribute node (the `ren` primitive's effect).
    pub fn rename(&mut self, id: NodeId, name: impl Into<String>) -> Result<()> {
        let data = self.node_mut(id)?;
        match data.kind {
            NodeKind::Element | NodeKind::Attribute => {
                let old = data.name.replace(name.into());
                self.record(DocEntry::Name { node: id, old });
                Ok(())
            }
            NodeKind::Text => {
                Err(XdmError::InvalidStructure(format!("cannot rename text node {id}")))
            }
        }
    }

    /// Sets the value of a text or attribute node (the `repV` primitive's effect).
    pub fn set_value(&mut self, id: NodeId, value: impl Into<String>) -> Result<()> {
        let data = self.node_mut(id)?;
        match data.kind {
            NodeKind::Text | NodeKind::Attribute => {
                let old = data.value.replace(value.into());
                self.record(DocEntry::Value { node: id, old });
                Ok(())
            }
            NodeKind::Element => {
                Err(XdmError::InvalidStructure(format!("cannot set value of element {id}")))
            }
        }
    }

    /// Removes all non-attribute children of `element` from the arena.
    pub fn clear_children(&mut self, element: NodeId) -> Result<()> {
        let children: Vec<NodeId> = self.children(element)?.to_vec();
        for c in children {
            self.remove_subtree(c)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // grafting (deep copy across arenas)
    // ------------------------------------------------------------------

    /// Deep-copies the subtree rooted at `src_root` from `src` into this arena.
    ///
    /// When `preserve_ids` is `true` the source identifiers are kept (an error
    /// is returned if any clashes with an existing identifier); otherwise fresh
    /// identifiers are assigned. Returns the identifier of the copied root in
    /// this arena, along with the mapping from source ids to new ids.
    pub fn graft(
        &mut self,
        src: &Document,
        src_root: NodeId,
        preserve_ids: bool,
    ) -> Result<(NodeId, HashMap<NodeId, NodeId>)> {
        let mut mapping: HashMap<NodeId, NodeId> = HashMap::new();
        let order = src.preorder(src_root);
        // First allocate all nodes.
        for &sid in &order {
            let sdata = src.node(sid)?;
            let nid = if preserve_ids {
                if self.nodes.contains(sid) {
                    return Err(XdmError::DuplicateNodeId(sid));
                }
                self.note_explicit_id(sid);
                sid
            } else {
                self.fresh_id()
            };
            let mut data = sdata.clone();
            data.parent = None;
            data.children.clear();
            data.attributes.clear();
            self.arena_insert(nid, data);
            mapping.insert(sid, nid);
        }
        // Then wire structure.
        for &sid in &order {
            let sdata = src.node(sid)?;
            let nid = mapping[&sid];
            for &a in &sdata.attributes {
                if let Some(&na) = mapping.get(&a) {
                    self.add_attribute(nid, na)?;
                }
            }
            for &c in &sdata.children {
                if let Some(&nc) = mapping.get(&c) {
                    self.append_child(nid, nc)?;
                }
            }
        }
        Ok((mapping[&src_root], mapping))
    }

    /// Extracts the subtree rooted at `root` as a standalone document (deep
    /// copy, identifiers preserved).
    pub fn extract_subtree(&self, root: NodeId) -> Result<Document> {
        let mut out = Document::new();
        let (new_root, _) = out.graft(self, root, true)?;
        out.set_root(new_root)?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // identifier assignment
    // ------------------------------------------------------------------

    /// Re-assigns identifiers to all nodes of the document in preorder,
    /// starting at `start`. This is the "agreed algorithm" of §4.1 with which
    /// all PUL producers can deterministically identify the nodes of the
    /// authoritative document. Returns the mapping old → new.
    pub fn assign_preorder_ids(&mut self, start: u64) -> HashMap<NodeId, NodeId> {
        assert!(
            self.journal.is_none(),
            "assign_preorder_ids rewrites every identifier and cannot run inside a journal scope"
        );
        let order = self.preorder_from_root();
        let mut mapping = HashMap::with_capacity(order.len());
        for (i, &old) in order.iter().enumerate() {
            mapping.insert(old, NodeId::new(start + i as u64));
        }
        // Remap in old storage order, then insert ascending by new id: the
        // slab anchors its dense range at the first insert, so out-of-order
        // insertion would strand lower identifiers in the spill map — the
        // opposite of what a renumbering is for.
        let mut entries: Vec<(NodeId, NodeData)> = std::mem::take(&mut self.nodes)
            .into_entries()
            .map(|(old, mut data)| {
                let new_id = *mapping.get(&old).unwrap_or(&old);
                data.parent = data.parent.map(|p| *mapping.get(&p).unwrap_or(&p));
                for c in &mut data.children {
                    *c = *mapping.get(c).unwrap_or(c);
                }
                for a in &mut data.attributes {
                    *a = *mapping.get(a).unwrap_or(a);
                }
                (new_id, data)
            })
            .collect();
        entries.sort_unstable_by_key(|(id, _)| *id);
        let mut new_nodes = IdSlab::with_capacity(entries.len());
        for (new_id, data) in entries {
            new_nodes.insert(new_id, data);
        }
        self.nodes = new_nodes;
        self.root = self.root.map(|r| *mapping.get(&r).unwrap_or(&r));
        self.next_id = self.nodes.keys().map(|k| k.as_u64()).max().unwrap_or(0) + 1;
        mapping
    }

    /// Structural equality of two subtrees ignoring node identifiers: same
    /// kinds, names, values, same child sequences and the same attribute sets
    /// (attribute order is irrelevant).
    pub fn subtree_equal(&self, a: NodeId, other: &Document, b: NodeId) -> bool {
        let (Ok(da), Ok(db)) = (self.node(a), other.node(b)) else { return false };
        if da.kind != db.kind || da.name != db.name || da.value != db.value {
            return false;
        }
        if da.children.len() != db.children.len() || da.attributes.len() != db.attributes.len() {
            return false;
        }
        // attributes: compare as multisets of (name, value) plus recursively equal
        let mut bt_attrs: Vec<NodeId> = db.attributes.clone();
        for &ca in &da.attributes {
            let pos = bt_attrs.iter().position(|&cb| self.subtree_equal(ca, other, cb));
            match pos {
                Some(i) => {
                    bt_attrs.remove(i);
                }
                None => return false,
            }
        }
        da.children
            .iter()
            .zip(db.children.iter())
            .all(|(&ca, &cb)| self.subtree_equal(ca, other, cb))
    }

    // ------------------------------------------------------------------
    // shared immutable views
    // ------------------------------------------------------------------

    /// Freezes the current state into a cheaply clonable, immutable shared
    /// view — the arena handle MVCC snapshot readers hold while commits
    /// proceed on the live copy. The freeze itself copies the arena once
    /// (O(document)); every clone of the returned handle afterwards is a
    /// reference-count bump.
    pub fn to_shared(&self) -> SharedDocument {
        SharedDocument::new(self.clone())
    }

    // ------------------------------------------------------------------
    // invariants and oracles
    // ------------------------------------------------------------------

    /// Exact equality of two documents: same root, same fresh-identifier
    /// counter, and the same `(id, data)` arena entries. This is the
    /// "bit-identical" comparison the differential tests use to verify that a
    /// journaled rollback restores exactly the state a snapshot clone would
    /// have restored.
    pub fn deep_eq(&self, other: &Document) -> bool {
        self.root == other.root
            && self.next_id == other.next_id
            && self.nodes.len() == other.nodes.len()
            && self.nodes.iter().all(|(id, data)| other.nodes.get(id) == Some(data))
    }

    /// Debug invariant walker: panics (with a description) on any violation of
    /// the arena's structural invariants — parent/child symmetry, attribute
    /// kinds, per-kind field shapes, identifier-counter monotonicity, slab
    /// dense/spill agreement, and (when a root is set) full attachment of the
    /// arena. O(document); intended for tests and post-commit assertions, not
    /// for hot paths.
    pub fn assert_consistent(&self) {
        self.nodes.assert_consistent();
        if let Some(root) = self.root {
            let rd = self.nodes.get(root).unwrap_or_else(|| panic!("root {root} not in arena"));
            assert!(rd.parent.is_none(), "root {root} has a parent");
        }
        let mut max_id = 0u64;
        for (id, data) in self.nodes.iter() {
            max_id = max_id.max(id.as_u64());
            for &c in &data.children {
                let cd =
                    self.nodes.get(c).unwrap_or_else(|| panic!("child {c} of {id} not in arena"));
                assert_eq!(cd.parent, Some(id), "child {c} of {id}: parent pointer disagrees");
                assert_ne!(cd.kind, NodeKind::Attribute, "attribute {c} listed as child of {id}");
            }
            for &a in &data.attributes {
                let ad = self
                    .nodes
                    .get(a)
                    .unwrap_or_else(|| panic!("attribute {a} of {id} not in arena"));
                assert_eq!(ad.parent, Some(id), "attribute {a} of {id}: parent pointer disagrees");
                assert_eq!(ad.kind, NodeKind::Attribute, "non-attribute {a} in attribute list");
            }
            if let Some(p) = data.parent {
                let pd =
                    self.nodes.get(p).unwrap_or_else(|| panic!("parent {p} of {id} not in arena"));
                assert!(
                    pd.children.contains(&id) || pd.attributes.contains(&id),
                    "{id} points at parent {p} but {p} does not list it"
                );
            }
            match data.kind {
                NodeKind::Element => {
                    assert!(data.name.is_some(), "element {id} has no name");
                }
                NodeKind::Attribute => {
                    assert!(data.name.is_some(), "attribute {id} has no name");
                    assert!(data.value.is_some(), "attribute {id} has no value");
                    assert!(
                        data.children.is_empty() && data.attributes.is_empty(),
                        "attribute {id} has children"
                    );
                }
                NodeKind::Text => {
                    assert!(data.value.is_some(), "text node {id} has no value");
                    assert!(
                        data.children.is_empty() && data.attributes.is_empty(),
                        "text node {id} has children"
                    );
                }
            }
        }
        assert!(
            self.nodes.is_empty() || self.next_id > max_id,
            "next_id {} not past the highest stored id {max_id}",
            self.next_id
        );
        if let Some(root) = self.root {
            // Every arena node is reachable from the root: a committed
            // document holds no detached leftovers.
            assert_eq!(
                self.preorder(root).len(),
                self.nodes.len(),
                "arena contains nodes not reachable from the root"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId, NodeId, NodeId) {
        // <issue vol="30"><article><title>T</title></article><article/></issue>
        let mut d = Document::new();
        let issue = d.new_element("issue");
        let vol = d.new_attribute("vol", "30");
        let a1 = d.new_element("article");
        let t = d.new_element("title");
        let txt = d.new_text("T");
        let a2 = d.new_element("article");
        d.set_root(issue).unwrap();
        d.add_attribute(issue, vol).unwrap();
        d.append_child(issue, a1).unwrap();
        d.append_child(a1, t).unwrap();
        d.append_child(t, txt).unwrap();
        d.append_child(issue, a2).unwrap();
        (d, issue, a1, t, txt, a2)
    }

    #[test]
    fn build_and_navigate() {
        let (d, issue, a1, t, txt, a2) = sample();
        assert_eq!(d.root(), Some(issue));
        assert_eq!(d.children(issue).unwrap(), &[a1, a2]);
        assert_eq!(d.parent(t).unwrap(), Some(a1));
        assert_eq!(d.kind(txt).unwrap(), NodeKind::Text);
        assert_eq!(d.name(a1).unwrap(), Some("article"));
        assert_eq!(d.value(txt).unwrap(), Some("T"));
        assert_eq!(d.node_count(), 6);
        assert!(d.is_child_of(a1, issue));
        assert!(!d.is_child_of(txt, issue));
        assert!(d.is_descendant_of(txt, issue));
        assert!(!d.is_descendant_of(issue, txt));
        assert_eq!(d.depth(txt).unwrap(), Some(3));
        assert_eq!(d.left_sibling(a2).unwrap(), Some(a1));
        assert_eq!(d.left_sibling(a1).unwrap(), None);
        assert_eq!(d.right_sibling(a1).unwrap(), Some(a2));
    }

    #[test]
    fn attribute_accessors() {
        let (d, issue, ..) = sample();
        let vol = d.attribute_by_name(issue, "vol").unwrap().unwrap();
        assert_eq!(d.value(vol).unwrap(), Some("30"));
        assert!(d.is_attribute_of(vol, issue));
        assert_eq!(d.attribute_by_name(issue, "missing").unwrap(), None);
    }

    #[test]
    fn document_order_relations() {
        let (d, issue, a1, t, txt, a2) = sample();
        assert_eq!(d.document_order(issue, a1), OrderRel::Before);
        assert_eq!(d.document_order(a1, a2), OrderRel::Before);
        assert_eq!(d.document_order(a2, txt), OrderRel::After);
        assert_eq!(d.document_order(t, t), OrderRel::Same);
        assert!(d.precedes(a1, a2));
        let vol = d.attribute_by_name(issue, "vol").unwrap().unwrap();
        // attributes precede children of the same element
        assert_eq!(d.document_order(vol, a1), OrderRel::Before);
        assert_eq!(d.document_order(issue, vol), OrderRel::Before);
    }

    #[test]
    fn preorder_traversal() {
        let (d, issue, a1, t, txt, a2) = sample();
        let vol = d.attribute_by_name(issue, "vol").unwrap().unwrap();
        assert_eq!(d.preorder_from_root(), vec![issue, vol, a1, t, txt, a2]);
        assert_eq!(d.descendants(a1), vec![t, txt]);
    }

    #[test]
    fn mutation_insert_variants() {
        let (mut d, issue, a1, _t, _txt, a2) = sample();
        let x = d.new_element("x");
        d.insert_before(a2, x).unwrap();
        assert_eq!(d.children(issue).unwrap(), &[a1, x, a2]);
        let y = d.new_element("y");
        d.insert_after(a2, y).unwrap();
        assert_eq!(d.children(issue).unwrap(), &[a1, x, a2, y]);
        let z = d.new_element("z");
        d.insert_first_child(issue, z).unwrap();
        assert_eq!(d.children(issue).unwrap(), &[z, a1, x, a2, y]);
    }

    #[test]
    fn mutation_errors() {
        let (mut d, issue, a1, _t, txt, _a2) = sample();
        let e = d.new_element("e");
        assert!(d.append_child(txt, e).is_err(), "text nodes cannot have children");
        let a = d.new_attribute("k", "v");
        assert!(d.append_child(issue, a).is_err(), "attributes are not children");
        assert!(d.add_attribute(txt, a).is_err(), "attributes attach to elements only");
        // already-attached node cannot be attached again
        assert!(d.append_child(issue, a1).is_err());
        assert!(d.rename(txt, "x").is_err());
        assert!(d.set_value(issue, "x").is_err());
        assert!(d.node(NodeId::new(9999)).is_err());
    }

    #[test]
    fn remove_subtree_drops_ids_permanently() {
        let (mut d, issue, a1, t, txt, a2) = sample();
        let before = d.next_id();
        d.remove_subtree(a1).unwrap();
        assert!(!d.contains(a1));
        assert!(!d.contains(t));
        assert!(!d.contains(txt));
        assert!(d.contains(a2));
        assert_eq!(d.children(issue).unwrap(), &[a2]);
        // ids are never reused
        let fresh = d.new_element("fresh");
        assert!(fresh.as_u64() >= before);
        assert_ne!(fresh, a1);
    }

    #[test]
    fn detach_root_clears_root() {
        let (mut d, issue, ..) = sample();
        d.detach(issue).unwrap();
        assert_eq!(d.root(), None);
    }

    #[test]
    fn rename_and_set_value() {
        let (mut d, issue, _a1, _t, txt, _a2) = sample();
        d.rename(issue, "proceedings").unwrap();
        assert_eq!(d.name(issue).unwrap(), Some("proceedings"));
        d.set_value(txt, "New title").unwrap();
        assert_eq!(d.value(txt).unwrap(), Some("New title"));
        let vol = d.attribute_by_name(issue, "vol").unwrap().unwrap();
        d.set_value(vol, "31").unwrap();
        assert_eq!(d.value(vol).unwrap(), Some("31"));
        d.rename(vol, "volume").unwrap();
        assert_eq!(d.name(vol).unwrap(), Some("volume"));
    }

    #[test]
    fn clear_children_removes_content() {
        let (mut d, _issue, a1, t, txt, _a2) = sample();
        d.clear_children(a1).unwrap();
        assert!(d.children(a1).unwrap().is_empty());
        assert!(!d.contains(t));
        assert!(!d.contains(txt));
    }

    #[test]
    fn explicit_ids_and_duplicates() {
        let mut d = Document::new();
        let a = d.new_element_with_id(10u64, "a").unwrap();
        assert_eq!(a.as_u64(), 10);
        assert!(d.new_element_with_id(10u64, "b").is_err());
        // next fresh id skips past explicit ids
        let b = d.new_element("b");
        assert_eq!(b.as_u64(), 11);
    }

    #[test]
    fn graft_with_fresh_and_preserved_ids() {
        let (src, _issue, a1, ..) = sample();
        let mut dst = Document::new();
        let root = dst.new_element("holder");
        dst.set_root(root).unwrap();
        let (copy, mapping) = dst.graft(&src, a1, false).unwrap();
        dst.append_child(root, copy).unwrap();
        assert_eq!(mapping.len(), 3);
        assert!(dst.subtree_equal(copy, &src, a1));

        let mut dst2 = Document::with_first_id(1000);
        let (copy2, _) = dst2.graft(&src, a1, true).unwrap();
        assert_eq!(copy2, a1, "identifiers preserved");
        // preserving again clashes
        assert!(dst2.graft(&src, a1, true).is_err());
    }

    #[test]
    fn extract_subtree_preserves_ids() {
        let (d, _issue, a1, t, txt, _a2) = sample();
        let sub = d.extract_subtree(a1).unwrap();
        assert_eq!(sub.root(), Some(a1));
        assert!(sub.contains(t));
        assert!(sub.contains(txt));
        assert_eq!(sub.node_count(), 3);
    }

    #[test]
    fn preorder_id_assignment() {
        let (mut d, ..) = sample();
        let mapping = d.assign_preorder_ids(1);
        assert_eq!(mapping.len(), 6);
        let order = d.preorder_from_root();
        let ids: Vec<u64> = order.iter().map(|n| n.as_u64()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(d.next_id(), 7);
        // structure survives
        let root = d.root().unwrap();
        assert_eq!(d.name(root).unwrap(), Some("issue"));
        assert_eq!(d.children(root).unwrap().len(), 2);
    }

    #[test]
    fn journal_rewind_restores_every_mutation_kind() {
        let (mut d, issue, a1, _t, txt, a2) = sample();
        let before = d.clone();
        let mark = d.journal_mark();
        // One of each mutation family: alloc, child insert (all positions),
        // attribute attach, rename, set_value, subtree removal, detach.
        let x = d.new_element("x");
        d.insert_before(a2, x).unwrap();
        let y = d.new_element("y");
        d.insert_after(x, y).unwrap();
        let z = d.new_element("z");
        d.append_child(issue, z).unwrap();
        let at = d.new_attribute("k", "v");
        d.add_attribute(x, at).unwrap();
        d.rename(issue, "renamed").unwrap();
        d.set_value(txt, "changed").unwrap();
        d.remove_subtree(a1).unwrap();
        d.detach(a2).unwrap();
        assert!(!d.deep_eq(&before));
        assert!(d.journal_len() > 0);
        d.journal_rewind(mark);
        d.journal_discard();
        assert!(d.deep_eq(&before), "rewind must restore the exact pre-mark state");
        d.assert_consistent();
    }

    #[test]
    fn journal_scopes_nest() {
        let (mut d, issue, ..) = sample();
        let outer = d.journal_mark();
        d.rename(issue, "outer").unwrap();
        let after_outer = d.clone();
        let inner = d.journal_mark();
        let x = d.new_element("x");
        d.append_child(issue, x).unwrap();
        d.journal_rewind(inner);
        assert!(d.deep_eq(&after_outer), "inner rewind keeps the outer change");
        assert!(d.journal_is_active(), "rewind leaves the journal active");
        d.journal_rewind(outer);
        d.journal_discard();
        assert_eq!(d.name(issue).unwrap(), Some("issue"));
        assert!(!d.journal_is_active());
    }

    #[test]
    fn journal_discard_keeps_changes() {
        let (mut d, issue, ..) = sample();
        let _mark = d.journal_mark();
        d.rename(issue, "kept").unwrap();
        d.journal_discard();
        assert_eq!(d.name(issue).unwrap(), Some("kept"));
        assert_eq!(d.journal_len(), 0);
    }

    #[test]
    fn replace_with_is_journaled() {
        let (mut d, ..) = sample();
        let before = d.clone();
        let mark = d.journal_mark();
        let mut new_doc = Document::new();
        let r = new_doc.new_element("fresh");
        new_doc.set_root(r).unwrap();
        d.replace_with(new_doc);
        assert_eq!(d.name(d.root().unwrap()).unwrap(), Some("fresh"));
        d.journal_rewind(mark);
        d.journal_discard();
        assert!(d.deep_eq(&before));
    }

    #[test]
    fn graft_failure_rolls_back_partial_allocations() {
        let (src, _issue, a1, ..) = sample();
        let mut dst = Document::with_first_id(1000);
        let (copied, _) = dst.graft(&src, a1, true).unwrap();
        dst.set_root(copied).unwrap();
        let before = dst.clone();
        let mark = dst.journal_mark();
        // Preserving the same ids again clashes partway through allocation.
        assert!(dst.graft(&src, a1, true).is_err());
        dst.journal_rewind(mark);
        dst.journal_discard();
        assert!(dst.deep_eq(&before), "partial graft fully undone");
        dst.assert_consistent();
    }

    #[test]
    fn mutations_without_a_journal_record_nothing() {
        let (mut d, issue, ..) = sample();
        d.rename(issue, "x").unwrap();
        assert_eq!(d.journal_len(), 0);
        assert!(!d.journal_is_active());
        // rewinding with no active journal is a no-op
        d.journal_rewind(JournalMark::default());
        assert_eq!(d.name(issue).unwrap(), Some("x"));
    }

    #[test]
    fn assert_consistent_accepts_committed_documents() {
        let (d, ..) = sample();
        d.assert_consistent();
    }

    #[test]
    #[should_panic(expected = "cannot run inside a journal scope")]
    fn preorder_reassignment_rejects_active_journal() {
        let (mut d, ..) = sample();
        let _ = d.journal_mark();
        d.assign_preorder_ids(1);
    }

    #[test]
    fn subtree_equal_ignores_attribute_order() {
        let mut d1 = Document::new();
        let e1 = d1.new_element("e");
        let x1 = d1.new_attribute("x", "1");
        let y1 = d1.new_attribute("y", "2");
        d1.set_root(e1).unwrap();
        d1.add_attribute(e1, x1).unwrap();
        d1.add_attribute(e1, y1).unwrap();

        let mut d2 = Document::new();
        let e2 = d2.new_element("e");
        let y2 = d2.new_attribute("y", "2");
        let x2 = d2.new_attribute("x", "1");
        d2.set_root(e2).unwrap();
        d2.add_attribute(e2, y2).unwrap();
        d2.add_attribute(e2, x2).unwrap();

        assert!(d1.subtree_equal(e1, &d2, e2));

        let mut d3 = Document::new();
        let e3 = d3.new_element("e");
        let x3 = d3.new_attribute("x", "DIFFERENT");
        d3.set_root(e3).unwrap();
        d3.add_attribute(e3, x3).unwrap();
        assert!(!d1.subtree_equal(e1, &d3, e3));
    }
}
