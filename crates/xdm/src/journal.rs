//! The apply journal: O(change) rollback for [`Document`](crate::Document)
//! mutations.
//!
//! Atomic commits used to be bought by cloning the whole document before
//! applying a PUL — O(document) memory and time for a change that touches a
//! handful of nodes. The journal inverts the cost model: while a journal scope
//! is active, every mutator of [`Document`](crate::Document) appends the
//! *inverse* of its effect to the journal, and rolling back replays the
//! inverses in reverse order. Both the bookkeeping and the rollback are
//! proportional to the size of the change, never to the size of the document.
//!
//! The protocol is mark/rewind, which nests naturally:
//!
//! 1. [`Document::journal_mark`](crate::Document::journal_mark) activates
//!    journaling (if it is not already active) and returns the current
//!    position;
//! 2. on failure, [`Document::journal_rewind`](crate::Document::journal_rewind)
//!    undoes every entry recorded past the mark;
//! 3. whoever *activated* the journal eventually calls
//!    [`Document::journal_discard`](crate::Document::journal_discard) — on
//!    success the recorded inverses are simply dropped.
//!
//! An inner scope (say, one commit inside a transaction) rewinds to its own
//! mark on failure while the outer scope's entries stay recorded, so the
//! transaction can still undo successfully committed changes later.

use crate::node::{NodeData, NodeId};
use crate::slab::IdSlab;

/// A position in a journal, returned by `journal_mark` and consumed by
/// `journal_rewind`: rewinding undoes every entry recorded after the mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct JournalMark(pub(crate) usize);

impl JournalMark {
    /// Creates a mark at an explicit position (used by sibling journals — e.g.
    /// the labeling journal — which reuse the mark type).
    pub fn new(position: usize) -> Self {
        JournalMark(position)
    }

    /// The journal length at the time the mark was taken.
    pub fn position(self) -> usize {
        self.0
    }
}

/// The moved-out arena state restored by [`DocEntry::RestoreAll`] (boxed to
/// keep the entry enum small).
#[derive(Debug, Clone)]
pub(crate) struct ArenaState {
    pub(crate) nodes: IdSlab<NodeData>,
    pub(crate) root: Option<NodeId>,
    pub(crate) next_id: u64,
}

/// One inverse entry. Each variant undoes exactly one primitive effect of a
/// mutator; mutators push one or more entries per call.
#[derive(Debug, Clone)]
pub(crate) enum DocEntry {
    /// Drop a node the mutation allocated (inverse of an arena insert).
    Forget(NodeId),
    /// Re-insert a node the mutation removed from the arena (the data is
    /// *moved* into the entry, not cloned).
    Restore(NodeId, Box<NodeData>),
    /// Remove the child at `index` of `parent` (inverse of a child insertion).
    ChildRemove { parent: NodeId, index: usize },
    /// Re-insert `child` at `index` of `parent` (inverse of a child removal).
    ChildInsert { parent: NodeId, index: usize, child: NodeId },
    /// Remove the attribute at `index` of `element`.
    AttrRemove { element: NodeId, index: usize },
    /// Re-insert `attr` at `index` of `element`.
    AttrInsert { element: NodeId, index: usize, attr: NodeId },
    /// Restore a node's parent pointer.
    Parent { node: NodeId, old: Option<NodeId> },
    /// Restore a node's name (λ).
    Name { node: NodeId, old: Option<String> },
    /// Restore a node's value (ν).
    Value { node: NodeId, old: Option<String> },
    /// Restore the document root.
    Root(Option<NodeId>),
    /// Restore the fresh-identifier counter.
    NextId(u64),
    /// Restore the whole arena — the inverse of
    /// [`Document::replace_with`](crate::Document::replace_with), which swaps
    /// in a new document wholesale (e.g. the streaming commit). The previous
    /// state is moved into the entry, so recording it is O(1).
    RestoreAll(Box<ArenaState>),
}

/// The inverse-entry log attached to a [`Document`](crate::Document) while a
/// journal scope is active.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    pub(crate) entries: Vec<DocEntry>,
}

impl Journal {
    /// Number of inverse entries recorded so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entry has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}
