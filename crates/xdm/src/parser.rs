//! DOM construction on top of the pull parser.
//!
//! * [`parse_document`] — parses plain XML, assigning identifiers sequentially
//!   in document order (the agreed identification algorithm of §4.1);
//! * [`parse_document_identified`] — parses the identified serialization,
//!   reconstructing the original identifiers;
//! * [`parse_fragment`] — parses a fragment into a [`Tree`] (also accepts the
//!   `name="value"` form for attribute fragments and bare text).

use crate::document::Document;
use crate::error::XdmError;
use crate::events::{decode_entities, Event, EventReader, IdMode};
use crate::node::NodeId;
use crate::tree::Tree;
use crate::Result;

fn build(mut reader: EventReader<'_>) -> Result<Document> {
    let mut doc = Document::new();
    let mut stack: Vec<NodeId> = Vec::new();
    while let Some(event) = reader.next_event()? {
        match event {
            Event::StartElement { id, name, attributes } => {
                doc.new_element_with_id(id, name)?;
                for a in attributes {
                    doc.new_attribute_with_id(a.id, a.name, a.value)?;
                    doc.add_attribute(id, a.id)?;
                }
                match stack.last() {
                    Some(&parent) => doc.append_child(parent, id)?,
                    None => {
                        if doc.root().is_some() {
                            return Err(XdmError::Parse {
                                offset: 0,
                                message: "multiple root elements".into(),
                            });
                        }
                        doc.set_root(id)?;
                    }
                }
                stack.push(id);
            }
            Event::Text { id, value } => {
                doc.new_text_with_id(id, value)?;
                match stack.last() {
                    Some(&parent) => doc.append_child(parent, id)?,
                    None => {
                        return Err(XdmError::Parse {
                            offset: 0,
                            message: "text outside the root element".into(),
                        })
                    }
                }
            }
            Event::EndElement { .. } => {
                stack.pop();
            }
        }
    }
    if doc.root().is_none() {
        return Err(XdmError::Parse { offset: 0, message: "no root element found".into() });
    }
    Ok(doc)
}

/// Parses plain XML text into a [`Document`], assigning node identifiers
/// sequentially in document order starting at 1.
pub fn parse_document(xml: &str) -> Result<Document> {
    build(EventReader::new(xml))
}

/// Parses plain XML text, assigning identifiers starting at `first_id`.
pub fn parse_document_with_first_id(xml: &str, first_id: u64) -> Result<Document> {
    build(EventReader::with_mode(xml, IdMode::Sequential(first_id)))
}

/// Parses the identified serialization, reconstructing embedded identifiers.
pub fn parse_document_identified(xml: &str) -> Result<Document> {
    build(EventReader::identified(xml))
}

/// Parses a fragment into a [`Tree`].
///
/// Accepted forms:
/// * an element fragment: `<author>G.Guerrini</author>`;
/// * an attribute fragment: `initPage="132"`;
/// * bare text (anything that does not start with `<`), e.g. `Report on ...`.
pub fn parse_fragment(text: &str) -> Result<Tree> {
    parse_fragment_with_first_id(text, 1)
}

/// Parses a fragment assigning identifiers starting at `first_id`.
pub fn parse_fragment_with_first_id(text: &str, first_id: u64) -> Result<Tree> {
    let trimmed = text.trim();
    if trimmed.starts_with('<') {
        let doc = parse_document_with_first_id(trimmed, first_id)?;
        return Tree::from_document(doc);
    }
    // attribute form: name="value" (single attribute, no '<')
    if let Some(eq) = trimmed.find('=') {
        let name = trimmed[..eq].trim();
        let rest = trimmed[eq + 1..].trim();
        let is_name = !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'));
        if is_name
            && rest.len() >= 2
            && ((rest.starts_with('"') && rest.ends_with('"'))
                || (rest.starts_with('\'') && rest.ends_with('\'')))
        {
            let value = decode_entities(&rest[1..rest.len() - 1])?;
            let mut doc = Document::with_first_id(first_id);
            let a = doc.new_attribute(name, value);
            doc.set_root(a)?;
            return Tree::from_document(doc);
        }
    }
    // bare text
    let mut doc = Document::with_first_id(first_id);
    let t = doc.new_text(decode_entities(text)?);
    doc.set_root(t)?;
    Tree::from_document(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;
    use crate::writer;

    #[test]
    fn parse_simple_document() {
        let xml = "<issue volume=\"30\"><article><title>Report on EDBT</title></article><article/></issue>";
        let doc = parse_document(xml).unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.name(root).unwrap(), Some("issue"));
        assert_eq!(doc.children(root).unwrap().len(), 2);
        assert_eq!(doc.attributes(root).unwrap().len(), 1);
        assert_eq!(doc.node_count(), 6);
        // preorder ids starting at 1
        let ids: Vec<u64> = doc.preorder_from_root().iter().map(|n| n.as_u64()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn parse_ids_match_assign_preorder_ids() {
        let xml = "<a x=\"1\"><b><c>t</c></b><d y=\"2\">u</d></a>";
        let doc = parse_document(xml).unwrap();
        let mut doc2 = parse_document(xml).unwrap();
        doc2.assign_preorder_ids(1);
        // Reassigning must be the identity on a freshly parsed document.
        assert_eq!(
            doc.preorder_from_root(),
            doc2.preorder_from_root(),
            "sequential parse ids are preorder ids"
        );
    }

    #[test]
    fn roundtrip_plain() {
        let xml =
            "<issue volume=\"30\"><article><title>R &amp; D</title></article><article/></issue>";
        let doc = parse_document(xml).unwrap();
        assert_eq!(writer::write_document(&doc), xml);
    }

    #[test]
    fn roundtrip_identified() {
        let xml = "<issue volume=\"30\"><article><title>R &amp; D</title></article></issue>";
        let doc = parse_document(xml).unwrap();
        let ident = writer::write_document_identified(&doc);
        let doc2 = parse_document_identified(&ident).unwrap();
        assert_eq!(doc.node_count(), doc2.node_count());
        let r1 = doc.root().unwrap();
        let r2 = doc2.root().unwrap();
        assert_eq!(r1, r2);
        assert!(doc.subtree_equal(r1, &doc2, r2));
        // identifiers preserved node by node
        assert_eq!(doc.preorder_from_root(), doc2.preorder_from_root());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_document("").is_err());
        assert!(parse_document("<a><b></c></a>").is_err());
        assert!(parse_document("<a/><b/>").is_err());
        assert!(parse_document("junk").is_err());
    }

    #[test]
    fn parse_with_first_id_offsets_ids() {
        let doc = parse_document_with_first_id("<a><b/></a>", 100).unwrap();
        let ids: Vec<u64> = doc.preorder_from_root().iter().map(|n| n.as_u64()).collect();
        assert_eq!(ids, vec![100, 101]);
    }

    #[test]
    fn parse_fragment_forms() {
        let e = parse_fragment("<author>G.Guerrini</author>").unwrap();
        assert_eq!(e.root_kind(), NodeKind::Element);
        assert_eq!(e.text_content(e.root_id()), "G.Guerrini");

        let a = parse_fragment("initPage=\"132\"").unwrap();
        assert_eq!(a.root_kind(), NodeKind::Attribute);
        assert_eq!(a.root_name().as_deref(), Some("initPage"));
        assert_eq!(a.value(a.root_id()).unwrap(), Some("132"));

        let a2 = parse_fragment("email='catania@disi'").unwrap();
        assert_eq!(a2.root_kind(), NodeKind::Attribute);

        let t = parse_fragment("Report on ...").unwrap();
        assert_eq!(t.root_kind(), NodeKind::Text);
        assert_eq!(t.value(t.root_id()).unwrap(), Some("Report on ..."));

        // a text that merely contains '=' is still text
        let t2 = parse_fragment("x = y").unwrap();
        assert_eq!(t2.root_kind(), NodeKind::Text);
    }

    #[test]
    fn parse_fragment_with_ids() {
        let t = parse_fragment_with_first_id("<article><title>XML</title></article>", 24).unwrap();
        let ids: Vec<u64> = t.preorder_from_root().iter().map(|n| n.as_u64()).collect();
        assert_eq!(ids, vec![24, 25, 26]);
    }

    #[test]
    fn whitespace_between_elements_is_skipped() {
        let xml = "<a>\n  <b>x</b>\n  <c/>\n</a>";
        let doc = parse_document(xml).unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.children(root).unwrap().len(), 2);
    }
}
