//! Error type shared by the document model and the XML parser/writer.

use std::fmt;

use crate::node::NodeId;

/// Errors raised by document manipulation or XML parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdmError {
    /// A node identifier was not found in the document arena.
    NodeNotFound(NodeId),
    /// A node identifier was allocated twice.
    DuplicateNodeId(NodeId),
    /// The requested structural mutation is not allowed for the node kind
    /// (e.g. appending an element child to a text node).
    InvalidStructure(String),
    /// The document has no root node yet.
    NoRoot,
    /// XML syntax error with byte offset and message.
    Parse { offset: usize, message: String },
    /// An operation referenced a detached node where an attached one was
    /// required (or vice versa).
    Detached(NodeId),
}

impl fmt::Display for XdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdmError::NodeNotFound(id) => write!(f, "node {id} not found in document"),
            XdmError::DuplicateNodeId(id) => write!(f, "node id {id} already allocated"),
            XdmError::InvalidStructure(msg) => write!(f, "invalid structure: {msg}"),
            XdmError::NoRoot => write!(f, "document has no root node"),
            XdmError::Parse { offset, message } => {
                write!(f, "XML parse error at byte {offset}: {message}")
            }
            XdmError::Detached(id) => write!(f, "node {id} is detached"),
        }
    }
}

impl std::error::Error for XdmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = XdmError::NodeNotFound(NodeId::new(7));
        assert!(e.to_string().contains('7'));
        let e = XdmError::Parse { offset: 12, message: "unexpected '<'".into() };
        assert!(e.to_string().contains("byte 12"));
        let e = XdmError::InvalidStructure("text node cannot have children".into());
        assert!(e.to_string().contains("text node"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&XdmError::NoRoot);
    }
}
