//! Node identifiers, node kinds and per-node data.

use std::fmt;

/// Unique identifier of a node within a document universe.
///
/// Identifiers are unique in the document, immutable, and never reused once the
/// node is removed (§4.1 of the paper). They are plain integers so that they
/// can be exchanged inside serialized PULs; the *assignment algorithm* (e.g.
/// preorder numbering of the authoritative document) is agreed upon by all PUL
/// producers, see [`crate::document::Document::assign_preorder_ids`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node identifier from its numeric value.
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// Returns the numeric value of the identifier.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

/// The node types of the model: `τ(v) ∈ {e, a, t}` (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeKind {
    /// Element node (`e`).
    Element,
    /// Attribute node (`a`).
    Attribute,
    /// Text node (`t`), modelling the textual content of elements.
    Text,
}

impl NodeKind {
    /// Single-letter code used by the paper and by the PUL exchange format.
    pub fn code(self) -> char {
        match self {
            NodeKind::Element => 'e',
            NodeKind::Attribute => 'a',
            NodeKind::Text => 't',
        }
    }

    /// Parses the single-letter code back into a kind.
    pub fn from_code(c: char) -> Option<Self> {
        match c {
            'e' => Some(NodeKind::Element),
            'a' => Some(NodeKind::Attribute),
            't' => Some(NodeKind::Text),
            _ => None,
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Data stored for a node in a document arena.
///
/// * elements have a `name` (λ) and ordered `children`, plus `attributes`;
/// * attributes have a `name` (λ) and a `value` (ν);
/// * text nodes have a `value` (ν).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeData {
    /// Node type.
    pub kind: NodeKind,
    /// λ — name, for element and attribute nodes.
    pub name: Option<String>,
    /// ν — value, for text and attribute nodes.
    pub value: Option<String>,
    /// Parent node (element for children/attributes), if attached.
    pub parent: Option<NodeId>,
    /// Ordered non-attribute children (element and text nodes).
    pub children: Vec<NodeId>,
    /// Attribute nodes (relative order not significant, Fig. 1).
    pub attributes: Vec<NodeId>,
}

impl NodeData {
    /// Creates a detached element node.
    pub fn element(name: impl Into<String>) -> Self {
        NodeData {
            kind: NodeKind::Element,
            name: Some(name.into()),
            value: None,
            parent: None,
            children: Vec::new(),
            attributes: Vec::new(),
        }
    }

    /// Creates a detached attribute node.
    pub fn attribute(name: impl Into<String>, value: impl Into<String>) -> Self {
        NodeData {
            kind: NodeKind::Attribute,
            name: Some(name.into()),
            value: Some(value.into()),
            parent: None,
            children: Vec::new(),
            attributes: Vec::new(),
        }
    }

    /// Creates a detached text node.
    pub fn text(value: impl Into<String>) -> Self {
        NodeData {
            kind: NodeKind::Text,
            name: None,
            value: Some(value.into()),
            parent: None,
            children: Vec::new(),
            attributes: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip_and_order() {
        let a = NodeId::new(3);
        let b = NodeId::new(10);
        assert!(a < b);
        assert_eq!(a.as_u64(), 3);
        assert_eq!(NodeId::from(10u64), b);
        assert_eq!(a.to_string(), "3");
    }

    #[test]
    fn node_kind_codes_roundtrip() {
        for k in [NodeKind::Element, NodeKind::Attribute, NodeKind::Text] {
            assert_eq!(NodeKind::from_code(k.code()), Some(k));
        }
        assert_eq!(NodeKind::from_code('x'), None);
    }

    #[test]
    fn node_data_constructors() {
        let e = NodeData::element("paper");
        assert_eq!(e.kind, NodeKind::Element);
        assert_eq!(e.name.as_deref(), Some("paper"));
        assert!(e.value.is_none());

        let a = NodeData::attribute("initPage", "132");
        assert_eq!(a.kind, NodeKind::Attribute);
        assert_eq!(a.value.as_deref(), Some("132"));

        let t = NodeData::text("Report on ...");
        assert_eq!(t.kind, NodeKind::Text);
        assert!(t.name.is_none());
    }
}
