//! SAX-style pull parsing and event serialization.
//!
//! The streaming PUL evaluator of §4.3 ("a specialized SAX parser and writer:
//! the original document is parsed generating a sequence of SAX events, that
//! are transformed on-the-fly applying the operations specified in the PUL and
//! immediately serialized to disk") is built on this module:
//!
//! * [`EventReader`] — a pull parser turning XML text into a stream of
//!   [`Event`]s, assigning node identifiers either *sequentially in document
//!   order* (the agreed identification algorithm of §4.1) or by reading them
//!   back from the *identified* serialization produced by
//!   [`crate::writer::write_document_identified`];
//! * [`EventWriter`] — an incremental serializer turning events back into XML
//!   (optionally re-embedding identifiers).

use std::collections::HashMap;

use crate::error::XdmError;
use crate::node::{NodeId, NodeKind};
use crate::writer::{escape_attr, escape_text, XAID_ATTR, XID_ATTR};
use crate::Result;

/// Processing-instruction target used to carry the identifier of the following
/// text node in the identified serialization.
pub const XTID_PI: &str = "xtid";

/// An attribute reported within a [`Event::StartElement`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrEvent {
    /// Identifier of the attribute node.
    pub id: NodeId,
    /// Attribute name.
    pub name: String,
    /// Attribute value (entity-decoded).
    pub value: String,
}

/// A SAX-style parsing event carrying node identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Start of an element, together with all its attributes.
    StartElement {
        /// Identifier of the element node.
        id: NodeId,
        /// Element name.
        name: String,
        /// Attributes of the element.
        attributes: Vec<AttrEvent>,
    },
    /// A text node.
    Text {
        /// Identifier of the text node.
        id: NodeId,
        /// Text value (entity-decoded).
        value: String,
    },
    /// End of an element.
    EndElement {
        /// Identifier of the element node (same as the matching start event).
        id: NodeId,
        /// Element name.
        name: String,
    },
}

impl Event {
    /// Returns the identifier of the node this event refers to.
    pub fn node_id(&self) -> NodeId {
        match self {
            Event::StartElement { id, .. }
            | Event::Text { id, .. }
            | Event::EndElement { id, .. } => *id,
        }
    }

    /// Returns the kind of node this event refers to.
    pub fn node_kind(&self) -> NodeKind {
        match self {
            Event::StartElement { .. } | Event::EndElement { .. } => NodeKind::Element,
            Event::Text { .. } => NodeKind::Text,
        }
    }
}

/// How the reader assigns identifiers to the nodes it encounters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdMode {
    /// Assign identifiers sequentially in document order, starting at the given value.
    Sequential(u64),
    /// Read identifiers embedded in the identified serialization
    /// (`_xid`/`_xaid` attributes and `<?xtid ?>` processing instructions).
    Identified,
}

struct OpenElement {
    id: NodeId,
    name: String,
}

/// Decodes the five predefined entities plus decimal/hexadecimal character references.
pub fn decode_entities(s: &str) -> Result<String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            let end = s[i..].find(';').map(|e| i + e).ok_or(XdmError::Parse {
                offset: i,
                message: "unterminated entity reference".into(),
            })?;
            let ent = &s[i + 1..end];
            match ent {
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "amp" => out.push('&'),
                "apos" => out.push('\''),
                "quot" => out.push('"'),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    let code = u32::from_str_radix(&ent[2..], 16).map_err(|_| XdmError::Parse {
                        offset: i,
                        message: format!("invalid character reference &{ent};"),
                    })?;
                    out.push(char::from_u32(code).ok_or(XdmError::Parse {
                        offset: i,
                        message: format!("invalid code point &{ent};"),
                    })?);
                }
                _ if ent.starts_with('#') => {
                    let code: u32 = ent[1..].parse().map_err(|_| XdmError::Parse {
                        offset: i,
                        message: format!("invalid character reference &{ent};"),
                    })?;
                    out.push(char::from_u32(code).ok_or(XdmError::Parse {
                        offset: i,
                        message: format!("invalid code point &{ent};"),
                    })?);
                }
                _ => {
                    return Err(XdmError::Parse {
                        offset: i,
                        message: format!("unknown entity &{ent};"),
                    })
                }
            }
            i = end + 1;
        } else {
            // advance one UTF-8 character
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&s[i..i + ch_len]);
            i += ch_len;
        }
    }
    Ok(out)
}

fn utf8_len(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b >> 5 == 0b110 {
        2
    } else if b >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

/// A pull parser producing [`Event`]s from XML text.
pub struct EventReader<'a> {
    input: &'a str,
    pos: usize,
    mode: IdMode,
    next_seq: u64,
    keep_whitespace: bool,
    stack: Vec<OpenElement>,
    pending: Vec<Event>,
    pending_text_id: Option<NodeId>,
    finished: bool,
}

impl<'a> EventReader<'a> {
    /// Creates a reader assigning identifiers sequentially starting at 1.
    pub fn new(input: &'a str) -> Self {
        Self::with_mode(input, IdMode::Sequential(1))
    }

    /// Creates a reader reading embedded identifiers (identified serialization).
    pub fn identified(input: &'a str) -> Self {
        Self::with_mode(input, IdMode::Identified)
    }

    /// Creates a reader with an explicit identifier mode.
    pub fn with_mode(input: &'a str, mode: IdMode) -> Self {
        let next_seq = match mode {
            IdMode::Sequential(s) => s,
            IdMode::Identified => 1,
        };
        EventReader {
            input,
            pos: 0,
            mode,
            next_seq,
            keep_whitespace: false,
            stack: Vec::new(),
            pending: Vec::new(),
            pending_text_id: None,
            finished: false,
        }
    }

    /// Keep whitespace-only text nodes (they are skipped by default).
    pub fn keep_whitespace(mut self, keep: bool) -> Self {
        self.keep_whitespace = keep;
        self
    }

    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes()
    }

    fn err(&self, message: impl Into<String>) -> XdmError {
        XdmError::Parse { offset: self.pos, message: message.into() }
    }

    fn alloc_seq(&mut self) -> NodeId {
        let id = NodeId::new(self.next_seq);
        self.next_seq += 1;
        id
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_until(&mut self, marker: &str) -> Result<()> {
        match self.input[self.pos..].find(marker) {
            Some(i) => {
                self.pos += i + marker.len();
                Ok(())
            }
            None => Err(self.err(format!("expected '{marker}' before end of input"))),
        }
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos;
        let bytes = self.bytes();
        while self.pos < bytes.len() {
            let b = bytes[self.pos];
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn skip_ws(&mut self) {
        let bytes = self.bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.pos < self.bytes().len() && self.bytes()[self.pos] == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn read_attr_value(&mut self) -> Result<String> {
        let bytes = self.bytes();
        if self.pos >= bytes.len() {
            return Err(self.err("unexpected end of input in attribute value"));
        }
        let quote = bytes[self.pos];
        if quote != b'"' && quote != b'\'' {
            return Err(self.err("expected quoted attribute value"));
        }
        self.pos += 1;
        let start = self.pos;
        match self.input[self.pos..].find(quote as char) {
            Some(i) => {
                let raw = &self.input[start..start + i];
                self.pos = start + i + 1;
                decode_entities(raw)
            }
            None => Err(self.err("unterminated attribute value")),
        }
    }

    fn parse_start_element(&mut self) -> Result<Event> {
        // self.pos is just after '<'
        let name = self.read_name()?;
        let mut raw_attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_ws();
            let bytes = self.bytes();
            if self.pos >= bytes.len() {
                return Err(self.err("unexpected end of input in start tag"));
            }
            match bytes[self.pos] {
                b'>' => {
                    self.pos += 1;
                    break;
                }
                b'/' => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return self.finish_start(name, raw_attrs, true);
                }
                _ => {
                    let aname = self.read_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let value = self.read_attr_value()?;
                    raw_attrs.push((aname, value));
                }
            }
        }
        self.finish_start(name, raw_attrs, false)
    }

    fn finish_start(
        &mut self,
        name: String,
        raw_attrs: Vec<(String, String)>,
        self_closing: bool,
    ) -> Result<Event> {
        // Separate reserved identifier-carrying attributes from regular ones.
        let mut xid: Option<u64> = None;
        let mut xaid: HashMap<String, u64> = HashMap::new();
        let mut plain: Vec<(String, String)> = Vec::new();
        for (n, v) in raw_attrs {
            if n == XID_ATTR {
                xid = Some(
                    v.parse().map_err(|_| self.err(format!("invalid {XID_ATTR} value '{v}'")))?,
                );
            } else if n == XAID_ATTR {
                for pair in v.split_whitespace() {
                    let (an, aid) = pair
                        .rsplit_once(':')
                        .ok_or_else(|| self.err(format!("invalid {XAID_ATTR} entry '{pair}'")))?;
                    let aid: u64 = aid
                        .parse()
                        .map_err(|_| self.err(format!("invalid {XAID_ATTR} id '{aid}'")))?;
                    xaid.insert(an.to_string(), aid);
                }
            } else {
                plain.push((n, v));
            }
        }

        let elem_id = match self.mode {
            IdMode::Sequential(_) => self.alloc_seq(),
            IdMode::Identified => NodeId::new(xid.ok_or_else(|| {
                self.err(format!("element '{name}' lacks {XID_ATTR} in identified mode"))
            })?),
        };

        let mut attributes = Vec::with_capacity(plain.len());
        for (n, v) in plain {
            let aid = match self.mode {
                IdMode::Sequential(_) => self.alloc_seq(),
                IdMode::Identified => NodeId::new(*xaid.get(&n).ok_or_else(|| {
                    self.err(format!("attribute '{n}' of '{name}' lacks an id in {XAID_ATTR}"))
                })?),
            };
            attributes.push(AttrEvent { id: aid, name: n, value: v });
        }

        let start = Event::StartElement { id: elem_id, name: name.clone(), attributes };
        if self_closing {
            self.pending.push(Event::EndElement { id: elem_id, name });
        } else {
            self.stack.push(OpenElement { id: elem_id, name });
        }
        Ok(start)
    }

    fn parse_end_element(&mut self) -> Result<Event> {
        // self.pos is just after '</'
        let name = self.read_name()?;
        self.skip_ws();
        self.expect(b'>')?;
        let open = self
            .stack
            .pop()
            .ok_or_else(|| self.err(format!("unexpected closing tag </{name}>")))?;
        if open.name != name {
            return Err(self.err(format!(
                "mismatched closing tag: expected </{}>, found </{name}>",
                open.name
            )));
        }
        Ok(Event::EndElement { id: open.id, name })
    }

    fn make_text_event(&mut self, value: String) -> Result<Event> {
        let id = match self.mode {
            IdMode::Sequential(_) => self.alloc_seq(),
            IdMode::Identified => self.pending_text_id.take().ok_or_else(|| {
                self.err("text node lacks a preceding <?xtid?> instruction in identified mode")
            })?,
        };
        Ok(Event::Text { id, value })
    }

    fn next_event_inner(&mut self) -> Result<Option<Event>> {
        loop {
            if let Some(ev) = self.pending.pop() {
                return Ok(Some(ev));
            }
            if self.finished {
                return Ok(None);
            }
            if self.pos >= self.input.len() {
                if !self.stack.is_empty() {
                    return Err(self.err(format!(
                        "unexpected end of input: <{}> not closed",
                        self.stack.last().unwrap().name
                    )));
                }
                self.finished = true;
                return Ok(None);
            }
            if self.starts_with("<") {
                if self.starts_with("<?") {
                    // processing instruction: either an xtid carrier or ignorable
                    self.pos += 2;
                    let target = self.read_name().unwrap_or_default();
                    let start = self.pos;
                    self.skip_until("?>")?;
                    let content = self.input[start..self.pos - 2].trim();
                    if target == XTID_PI && self.mode == IdMode::Identified {
                        let id: u64 = content
                            .parse()
                            .map_err(|_| self.err(format!("invalid xtid value '{content}'")))?;
                        self.pending_text_id = Some(NodeId::new(id));
                        // An xtid carrier directly followed by markup (or the
                        // end of input) identifies an *empty* text node: emit
                        // it now, or the carrier would be silently dropped
                        // and the node lost on the round trip.
                        if self.pos >= self.input.len()
                            || (self.starts_with("<") && !self.starts_with("<![CDATA["))
                        {
                            return self.make_text_event(String::new()).map(Some);
                        }
                    }
                    continue;
                }
                if self.starts_with("<!--") {
                    self.pos += 4;
                    self.skip_until("-->")?;
                    continue;
                }
                if self.starts_with("<![CDATA[") {
                    self.pos += 9;
                    let start = self.pos;
                    self.skip_until("]]>")?;
                    let value = self.input[start..self.pos - 3].to_string();
                    if self.stack.is_empty() {
                        return Err(self.err("character data outside the root element"));
                    }
                    return self.make_text_event(value).map(Some);
                }
                if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                    // skip until the matching '>', tolerating an internal subset
                    let mut depth = 0usize;
                    while self.pos < self.input.len() {
                        match self.bytes()[self.pos] {
                            b'[' => depth += 1,
                            b']' => depth = depth.saturating_sub(1),
                            b'>' if depth == 0 => {
                                self.pos += 1;
                                break;
                            }
                            _ => {}
                        }
                        self.pos += 1;
                    }
                    continue;
                }
                if self.starts_with("</") {
                    self.pos += 2;
                    return self.parse_end_element().map(Some);
                }
                self.pos += 1; // consume '<'
                return self.parse_start_element().map(Some);
            }
            // character data
            let start = self.pos;
            let rel = self.input[self.pos..].find('<').unwrap_or(self.input.len() - self.pos);
            self.pos += rel;
            let raw = &self.input[start..self.pos];
            let is_ws = raw.chars().all(char::is_whitespace);
            if self.stack.is_empty() {
                if is_ws {
                    continue;
                }
                return Err(self.err("character data outside the root element"));
            }
            if is_ws && !self.keep_whitespace {
                continue;
            }
            let value = decode_entities(raw)?;
            return self.make_text_event(value).map(Some);
        }
    }

    /// Reads the next event, `Ok(None)` at end of input.
    pub fn next_event(&mut self) -> Result<Option<Event>> {
        self.next_event_inner()
    }
}

impl<'a> Iterator for EventReader<'a> {
    type Item = Result<Event>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_event_inner() {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => None,
            Err(e) => {
                self.finished = true;
                Some(Err(e))
            }
        }
    }
}

/// Incremental XML serializer consuming [`Event`]s.
///
/// With `identified` set, node identifiers are re-embedded so that the output
/// can in turn be consumed by an identified [`EventReader`] — this is the
/// writer used by the streaming PUL evaluator.
pub struct EventWriter {
    out: String,
    identified: bool,
}

impl EventWriter {
    /// Creates a plain (non-identified) writer.
    pub fn new() -> Self {
        EventWriter { out: String::new(), identified: false }
    }

    /// Creates a writer that embeds node identifiers.
    pub fn identified() -> Self {
        EventWriter { out: String::new(), identified: true }
    }

    /// Writes a single event.
    pub fn write(&mut self, event: &Event) {
        match event {
            Event::StartElement { id, name, attributes } => {
                self.out.push('<');
                self.out.push_str(name);
                if self.identified {
                    self.out.push(' ');
                    self.out.push_str(XID_ATTR);
                    self.out.push_str("=\"");
                    self.out.push_str(&id.as_u64().to_string());
                    self.out.push('"');
                    if !attributes.is_empty() {
                        let pairs: Vec<String> = attributes
                            .iter()
                            .map(|a| format!("{}:{}", a.name, a.id.as_u64()))
                            .collect();
                        self.out.push(' ');
                        self.out.push_str(XAID_ATTR);
                        self.out.push_str("=\"");
                        self.out.push_str(&pairs.join(" "));
                        self.out.push('"');
                    }
                }
                for a in attributes {
                    self.out.push(' ');
                    self.out.push_str(&a.name);
                    self.out.push_str("=\"");
                    self.out.push_str(&escape_attr(&a.value));
                    self.out.push('"');
                }
                self.out.push('>');
            }
            Event::Text { id, value } => {
                if self.identified {
                    self.out.push_str("<?");
                    self.out.push_str(XTID_PI);
                    self.out.push(' ');
                    self.out.push_str(&id.as_u64().to_string());
                    self.out.push_str("?>");
                }
                self.out.push_str(&escape_text(value));
            }
            Event::EndElement { name, .. } => {
                self.out.push_str("</");
                self.out.push_str(name);
                self.out.push('>');
            }
        }
    }

    /// Writes every event of an iterator.
    pub fn write_all<'e>(&mut self, events: impl IntoIterator<Item = &'e Event>) {
        for e in events {
            self.write(e);
        }
    }

    /// Number of bytes produced so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether no output has been produced yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Finishes serialization and returns the produced XML.
    pub fn finish(self) -> String {
        self.out
    }
}

impl Default for EventWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Produces the event stream corresponding to a document subtree, using the
/// document's own node identifiers.
pub fn document_events(doc: &crate::Document, root: NodeId) -> Vec<Event> {
    fn rec(doc: &crate::Document, id: NodeId, out: &mut Vec<Event>) {
        let Ok(data) = doc.node(id) else { return };
        match data.kind {
            NodeKind::Text => {
                out.push(Event::Text { id, value: data.value.clone().unwrap_or_default() })
            }
            NodeKind::Attribute => {
                // standalone attribute: no event representation
            }
            NodeKind::Element => {
                let attributes = data
                    .attributes
                    .iter()
                    .filter_map(|&a| {
                        let ad = doc.node(a).ok()?;
                        Some(AttrEvent {
                            id: a,
                            name: ad.name.clone().unwrap_or_default(),
                            value: ad.value.clone().unwrap_or_default(),
                        })
                    })
                    .collect();
                let name = data.name.clone().unwrap_or_default();
                out.push(Event::StartElement { id, name: name.clone(), attributes });
                for &c in &data.children {
                    rec(doc, c, out);
                }
                out.push(Event::EndElement { id, name });
            }
        }
    }
    let mut out = Vec::new();
    rec(doc, root, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer;

    #[test]
    fn decode_entities_handles_all_predefined() {
        assert_eq!(
            decode_entities("a &lt; b &gt; c &amp; d &apos; e &quot; f").unwrap(),
            "a < b > c & d ' e \" f"
        );
        assert_eq!(decode_entities("&#65;&#x42;").unwrap(), "AB");
        assert!(decode_entities("&bogus;").is_err());
        assert!(decode_entities("&#xZZ;").is_err());
        assert!(decode_entities("&unterminated").is_err());
        assert_eq!(decode_entities("no entities").unwrap(), "no entities");
    }

    #[test]
    fn sequential_ids_follow_document_order() {
        let xml = "<issue volume=\"30\"><article><title>T</title></article><article/></issue>";
        let events: Vec<Event> = EventReader::new(xml).collect::<Result<Vec<_>>>().unwrap();
        // issue=1, volume=2, article=3, title=4, text=5, article2=6
        match &events[0] {
            Event::StartElement { id, name, attributes } => {
                assert_eq!(id.as_u64(), 1);
                assert_eq!(name, "issue");
                assert_eq!(attributes.len(), 1);
                assert_eq!(attributes[0].id.as_u64(), 2);
                assert_eq!(attributes[0].value, "30");
            }
            other => panic!("unexpected {other:?}"),
        }
        let ids: Vec<u64> = events
            .iter()
            .filter(|e| !matches!(e, Event::EndElement { .. }))
            .map(|e| e.node_id().as_u64())
            .collect();
        assert_eq!(ids, vec![1, 3, 4, 5, 6]);
        // last event closes the root
        assert!(
            matches!(events.last().unwrap(), Event::EndElement { name, .. } if name == "issue")
        );
    }

    #[test]
    fn empty_identified_text_nodes_survive() {
        // an xtid carrier with no following character data marks an *empty*
        // text node; it must produce a Text event, not vanish
        let xml = "<a _xid=\"1\"><?xtid 2?></a>";
        let events: Vec<Event> = EventReader::identified(xml).collect::<Result<Vec<_>>>().unwrap();
        assert!(
            events.iter().any(|e| matches!(e, Event::Text { id, value } if id.as_u64() == 2
                    && value.is_empty())),
            "empty text node lost: {events:?}"
        );
        // ... and only for the empty case: a carrier before CDATA still
        // feeds the CDATA text
        let xml = "<a _xid=\"1\"><?xtid 2?><![CDATA[x]]></a>";
        let events: Vec<Event> = EventReader::identified(xml).collect::<Result<Vec<_>>>().unwrap();
        let texts: Vec<_> = events.iter().filter(|e| matches!(e, Event::Text { .. })).collect();
        assert_eq!(texts.len(), 1);
        assert!(matches!(texts[0], Event::Text { id, value } if id.as_u64() == 2 && value == "x"));
    }

    #[test]
    fn whitespace_text_skipped_by_default_kept_on_request() {
        let xml = "<a>\n  <b/>\n</a>";
        let events: Vec<Event> = EventReader::new(xml).collect::<Result<Vec<_>>>().unwrap();
        assert!(events.iter().all(|e| !matches!(e, Event::Text { .. })));
        let events: Vec<Event> =
            EventReader::new(xml).keep_whitespace(true).collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(events.iter().filter(|e| matches!(e, Event::Text { .. })).count(), 2);
    }

    #[test]
    fn comments_pis_doctype_and_cdata() {
        let xml = "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a><!-- c --><![CDATA[x < y]]></a>";
        let events: Vec<Event> = EventReader::new(xml).collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(events.len(), 3);
        assert!(matches!(&events[1], Event::Text { value, .. } if value == "x < y"));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(EventReader::new("<a><b></a>").collect::<Result<Vec<_>>>().is_err());
        assert!(EventReader::new("<a>").collect::<Result<Vec<_>>>().is_err());
        assert!(EventReader::new("text only").collect::<Result<Vec<_>>>().is_err());
        assert!(EventReader::new("<a x=noquote></a>").collect::<Result<Vec<_>>>().is_err());
        assert!(EventReader::new("</a>").collect::<Result<Vec<_>>>().is_err());
    }

    #[test]
    fn identified_roundtrip_through_writer_and_reader() {
        // Build a document, write it identified, read events back: identifiers must match.
        let mut d = crate::Document::new();
        let issue = d.new_element_with_id(10u64, "issue").unwrap();
        let vol = d.new_attribute_with_id(20u64, "volume", "30").unwrap();
        let art = d.new_element_with_id(30u64, "article").unwrap();
        let txt = d.new_text_with_id(40u64, "hello & bye").unwrap();
        d.set_root(issue).unwrap();
        d.add_attribute(issue, vol).unwrap();
        d.append_child(issue, art).unwrap();
        d.append_child(art, txt).unwrap();

        let xml = writer::write_document_identified(&d);
        let events: Vec<Event> = EventReader::identified(&xml).collect::<Result<Vec<_>>>().unwrap();
        let start_ids: Vec<u64> = events
            .iter()
            .filter(|e| !matches!(e, Event::EndElement { .. }))
            .map(|e| e.node_id().as_u64())
            .collect();
        assert_eq!(start_ids, vec![10, 30, 40]);
        match &events[0] {
            Event::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].id.as_u64(), 20);
                assert_eq!(attributes[0].name, "volume");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn identified_mode_requires_ids() {
        let xml = "<a><b/></a>";
        assert!(EventReader::identified(xml).collect::<Result<Vec<_>>>().is_err());
    }

    #[test]
    fn event_writer_roundtrip() {
        let xml = "<issue volume=\"30\"><article><title>T &amp; U</title></article></issue>";
        let events: Vec<Event> = EventReader::new(xml).collect::<Result<Vec<_>>>().unwrap();
        let mut w = EventWriter::new();
        w.write_all(&events);
        let out = w.finish();
        // Re-parse and compare event streams (empty elements are written as <a></a>).
        let events2: Vec<Event> = EventReader::new(&out).collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(events, events2);
    }

    #[test]
    fn identified_event_writer_roundtrip() {
        let xml = "<issue volume=\"30\"><article><title>T</title></article></issue>";
        let events: Vec<Event> = EventReader::new(xml).collect::<Result<Vec<_>>>().unwrap();
        let mut w = EventWriter::identified();
        w.write_all(&events);
        let out = w.finish();
        let events2: Vec<Event> =
            EventReader::identified(&out).collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(events, events2);
    }

    #[test]
    fn document_events_match_reader_events() {
        let xml = "<issue volume=\"30\"><article><title>T</title></article><article/></issue>";
        let doc = crate::parser::parse_document(xml).unwrap();
        let from_doc = document_events(&doc, doc.root().unwrap());
        let from_reader: Vec<Event> = EventReader::new(xml).collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(from_doc, from_reader);
    }
}
