//! Dense identifier-indexed storage shared by the node arena and the labeling.
//!
//! Node identifiers are assigned sequentially by the executor (and by the
//! parser), so almost every identifier of a document falls in one contiguous
//! range. [`IdSlab`] exploits this: values are kept in a dense
//! `Vec<Option<T>>` indexed by `id - base`, so the lookup performed by every
//! Table-1 predicate is an array index instead of a hash probe. Identifiers
//! far outside the dense range (e.g. producer parameter trees generated with a
//! `content_id_base` in the billions, grafted with preserved identifiers) fall
//! back to a spill hash map, so the slab never allocates proportionally to the
//! identifier *values*, only to the number of stored entries.
//!
//! Identifiers are never reused after removal (§4.1), so a removed entry's
//! dense slot simply stays `None`. The corollary is that a slab's footprint
//! grows with the *highest id ever stored densely*, not with the number of
//! live entries: a very long session with heavy insert/delete churn
//! accumulates empty slots. Session-level compaction (`Executor::compact` in
//! the façade crate) renumbers via `Document::assign_preorder_ids`, rebuilding
//! every slab densely and resetting `dead` to zero under a new epoch.

use std::collections::HashMap;

use crate::node::NodeId;

/// Maximum hole the dense vector is allowed to grow over when an identifier
/// lands past its current end; anything farther goes to the spill map.
const MAX_DENSE_GAP: u64 = 1024;

/// Slot-occupancy statistics of an [`IdSlab`], as reported by
/// [`IdSlab::stats`]: the live/dead split of the dense range plus the spilled
/// sparse entries. Identifiers (and therefore slots) are never reused, so
/// `dead` grows monotonically under insert/delete churn *within one epoch* —
/// it is the observable that tells a long-lived session when a compaction
/// (renumbering via `assign_preorder_ids`) would pay off. Compaction rebuilds
/// the slab densely: right after it, `dead == 0` and `spill == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlabStats {
    /// Occupied slots of the dense range.
    pub live: usize,
    /// Empty slots of the dense range: identifiers that were removed (or
    /// skipped) and will never be stored again.
    pub dead: usize,
    /// Entries living in the sparse spill map.
    pub spill: usize,
}

impl SlabStats {
    /// Component-wise sum (aggregating several slabs).
    pub fn merged(self, other: SlabStats) -> SlabStats {
        SlabStats {
            live: self.live + other.live,
            dead: self.dead + other.dead,
            spill: self.spill + other.spill,
        }
    }

    /// Fraction of the dense range that is dead weight (0.0 for an empty
    /// slab).
    pub fn dead_ratio(&self) -> f64 {
        let dense = self.live + self.dead;
        if dense == 0 {
            0.0
        } else {
            self.dead as f64 / dense as f64
        }
    }
}

/// A map from [`NodeId`] to `T` optimised for sequentially assigned ids.
#[derive(Debug, Clone)]
pub struct IdSlab<T> {
    /// Identifier stored at `dense[0]`.
    base: u64,
    dense: Vec<Option<T>>,
    spill: HashMap<NodeId, T>,
    len: usize,
}

impl<T> Default for IdSlab<T> {
    fn default() -> Self {
        IdSlab::new()
    }
}

impl<T> IdSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        IdSlab { base: 0, dense: Vec::new(), spill: HashMap::new(), len: 0 }
    }

    /// Creates an empty slab with dense room for `n` sequential entries.
    pub fn with_capacity(n: usize) -> Self {
        IdSlab { base: 0, dense: Vec::with_capacity(n), spill: HashMap::new(), len: 0 }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab stores no entry.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn dense_offset(&self, id: NodeId) -> Option<usize> {
        let off = id.as_u64().checked_sub(self.base)?;
        if (off as usize) < self.dense.len() {
            Some(off as usize)
        } else {
            None
        }
    }

    /// Returns a reference to the value stored for `id`.
    ///
    /// An empty dense slot falls through to the spill map: an identifier that
    /// spilled while it was far past the dense end may later fall *inside* the
    /// dense range as the vector grows over it.
    #[inline]
    pub fn get(&self, id: NodeId) -> Option<&T> {
        if let Some(off) = self.dense_offset(id) {
            if let Some(v) = self.dense[off].as_ref() {
                return Some(v);
            }
        }
        self.spill.get(&id)
    }

    /// Returns a mutable reference to the value stored for `id`.
    #[inline]
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut T> {
        match self.dense_offset(id) {
            Some(off) if self.dense[off].is_some() => self.dense[off].as_mut(),
            _ => self.spill.get_mut(&id),
        }
    }

    /// Whether a value is stored for `id`.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        self.get(id).is_some()
    }

    /// Stores `value` for `id`, returning the previous value if any.
    pub fn insert(&mut self, id: NodeId, value: T) -> Option<T> {
        if self.len == 0 && self.spill.is_empty() && self.dense.is_empty() {
            // First entry anchors the dense range.
            self.base = id.as_u64();
        }
        let raw = id.as_u64();
        if raw >= self.base {
            let off = raw - self.base;
            if (off as usize) < self.dense.len() {
                // The previous value may live in the spill map if the id
                // spilled before the dense range grew over it.
                let old =
                    self.dense[off as usize].replace(value).or_else(|| self.spill.remove(&id));
                if old.is_none() {
                    self.len += 1;
                }
                return old;
            }
            if off < self.dense.len() as u64 + MAX_DENSE_GAP {
                self.dense.resize_with(off as usize + 1, || None);
                // The id may have spilled earlier, when the gap to it was
                // still too large: migrate rather than shadow it.
                let old = self.spill.remove(&id);
                self.dense[off as usize] = Some(value);
                if old.is_none() {
                    self.len += 1;
                }
                return old;
            }
        }
        let old = self.spill.insert(id, value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value stored for `id`. The dense slot is left
    /// empty (identifiers are never reused, so neither are slots).
    pub fn remove(&mut self, id: NodeId) -> Option<T> {
        let old = match self.dense_offset(id) {
            Some(off) if self.dense[off].is_some() => self.dense[off].take(),
            _ => self.spill.remove(&id),
        };
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Iterates over `(id, value)` pairs: the dense range in increasing
    /// identifier order first, then the spilled entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        let base = self.base;
        self.dense
            .iter()
            .enumerate()
            .filter_map(move |(i, v)| v.as_ref().map(|v| (NodeId::new(base + i as u64), v)))
            .chain(self.spill.iter().map(|(k, v)| (*k, v)))
    }

    /// Iterates over the stored identifiers.
    pub fn keys(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates over the stored values.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }

    /// Slot-occupancy statistics: live/dead dense slots and spilled entries.
    /// O(dense range) — meant for observability endpoints and tests, not for
    /// hot paths.
    pub fn stats(&self) -> SlabStats {
        let live = self.dense.iter().filter(|v| v.is_some()).count();
        SlabStats { live, dead: self.dense.len() - live, spill: self.spill.len() }
    }

    /// Debug invariant walker: panics if the stored length disagrees with the
    /// dense and spill populations, or if an identifier is stored in both the
    /// dense range and the spill map (a shadowing bug: `get` would see only
    /// the dense copy). O(entries); intended for tests. These invariants are
    /// epoch-agnostic: they hold across churn *and* across a compaction
    /// (which rebuilds the slab densely) — use
    /// [`assert_compact`](IdSlab::assert_compact) for the stricter
    /// freshly-compacted shape.
    pub fn assert_consistent(&self) {
        let dense_count = self.dense.iter().filter(|v| v.is_some()).count();
        assert_eq!(
            self.len,
            dense_count + self.spill.len(),
            "IdSlab: len {} disagrees with dense {} + spill {}",
            self.len,
            dense_count,
            self.spill.len()
        );
        for (i, v) in self.dense.iter().enumerate() {
            if v.is_some() {
                let id = NodeId::new(self.base + i as u64);
                assert!(
                    !self.spill.contains_key(&id),
                    "IdSlab: {id} stored in both the dense range and the spill map"
                );
            }
        }
    }

    /// The stricter post-compaction invariant: everything
    /// [`assert_consistent`](IdSlab::assert_consistent) checks, plus a fully
    /// dense layout — no dead slots, no spill entries. Holds right after a
    /// session compaction renumbers identifiers contiguously; ordinary churn
    /// re-introduces dead slots (within the new epoch) and this stops holding.
    pub fn assert_compact(&self) {
        self.assert_consistent();
        let stats = self.stats();
        assert_eq!(stats.dead, 0, "compacted slab left {} dead slots", stats.dead);
        assert_eq!(stats.spill, 0, "compacted slab left {} spill entries", stats.spill);
    }

    /// Consumes the slab, yielding all `(id, value)` pairs.
    pub fn into_entries(self) -> impl Iterator<Item = (NodeId, T)> {
        let base = self.base;
        self.dense
            .into_iter()
            .enumerate()
            .filter_map(move |(i, v)| v.map(|v| (NodeId::new(base + i as u64), v)))
            .chain(self.spill)
    }
}

impl<T> FromIterator<(NodeId, T)> for IdSlab<T> {
    fn from_iter<I: IntoIterator<Item = (NodeId, T)>>(iter: I) -> Self {
        let mut slab = IdSlab::new();
        for (id, v) in iter {
            slab.insert(id, v);
        }
        slab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_sequential_inserts() {
        let mut s: IdSlab<u32> = IdSlab::new();
        for i in 1..=100u64 {
            assert!(s.insert(NodeId::new(i), i as u32 * 2).is_none());
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.get(NodeId::new(50)), Some(&100));
        assert!(s.contains(NodeId::new(1)));
        assert!(!s.contains(NodeId::new(101)));
        assert_eq!(s.spill.len(), 0, "sequential ids stay dense");
    }

    #[test]
    fn far_ids_spill_instead_of_allocating() {
        let mut s: IdSlab<u8> = IdSlab::new();
        s.insert(NodeId::new(1), 1);
        s.insert(NodeId::new(1 << 40), 2);
        assert!(s.dense.len() < 10, "huge id must not grow the dense vec");
        assert_eq!(s.get(NodeId::new(1 << 40)), Some(&2));
        assert_eq!(s.len(), 2);
        // ids below the base also spill
        let mut t: IdSlab<u8> = IdSlab::new();
        t.insert(NodeId::new(1000), 1);
        t.insert(NodeId::new(5), 2);
        assert_eq!(t.get(NodeId::new(5)), Some(&2));
    }

    #[test]
    fn small_gaps_extend_the_dense_range() {
        let mut s: IdSlab<u8> = IdSlab::new();
        s.insert(NodeId::new(10), 1);
        s.insert(NodeId::new(20), 2); // gap of 9 < MAX_DENSE_GAP
        assert_eq!(s.spill.len(), 0);
        assert_eq!(s.get(NodeId::new(20)), Some(&2));
        assert_eq!(s.get(NodeId::new(15)), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn remove_and_replace() {
        let mut s: IdSlab<&str> = IdSlab::new();
        s.insert(NodeId::new(3), "a");
        s.insert(NodeId::new(4), "b");
        assert_eq!(s.insert(NodeId::new(3), "a2"), Some("a"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(NodeId::new(3)), Some("a2"));
        assert_eq!(s.remove(NodeId::new(3)), None);
        assert_eq!(s.len(), 1);
        assert!(!s.contains(NodeId::new(3)));
    }

    #[test]
    fn iteration_covers_dense_and_spill() {
        let mut s: IdSlab<u64> = IdSlab::new();
        s.insert(NodeId::new(1), 10);
        s.insert(NodeId::new(2), 20);
        s.insert(NodeId::new(1 << 50), 30);
        let mut pairs: Vec<(u64, u64)> = s.iter().map(|(k, v)| (k.as_u64(), *v)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 10), (2, 20), (1 << 50, 30)]);
        let mut owned: Vec<(u64, u64)> =
            s.clone().into_entries().map(|(k, v)| (k.as_u64(), v)).collect();
        owned.sort_unstable();
        assert_eq!(owned, pairs);
        assert_eq!(s.keys().count(), 3);
        assert_eq!(s.values().sum::<u64>(), 60);
    }

    #[test]
    fn spilled_id_survives_dense_growth_over_it() {
        // Insert an id far past the dense end (spills), then grow the dense
        // range over that offset: the spilled entry must stay reachable and
        // replaceable.
        let mut s: IdSlab<u32> = IdSlab::new();
        s.insert(NodeId::new(1), 1);
        let far = 1 + MAX_DENSE_GAP + 500; // beyond the gap → spill
        s.insert(NodeId::new(far), 99);
        assert_eq!(s.get(NodeId::new(far)), Some(&99));
        // grow the dense vec past `far` with small-gap inserts
        let mut id = 2;
        while id <= far + 10 {
            if id != far {
                s.insert(NodeId::new(id), id as u32);
            }
            id += MAX_DENSE_GAP / 2;
        }
        assert_eq!(s.get(NodeId::new(far)), Some(&99), "spilled entry still visible");
        *s.get_mut(NodeId::new(far)).unwrap() = 100;
        assert_eq!(s.get(NodeId::new(far)), Some(&100));
        // overwriting via insert returns the spilled value, not a phantom None
        assert_eq!(s.insert(NodeId::new(far), 7), Some(100));
        assert_eq!(s.iter().filter(|(k, _)| k.as_u64() == far).count(), 1, "no double entry");
        assert_eq!(s.remove(NodeId::new(far)), Some(7));
        assert_eq!(s.get(NodeId::new(far)), None);
    }

    #[test]
    fn stats_track_live_dead_and_spill() {
        let mut s: IdSlab<u8> = IdSlab::new();
        assert_eq!(s.stats(), SlabStats::default());
        for i in 1..=10u64 {
            s.insert(NodeId::new(i), i as u8);
        }
        assert_eq!(s.stats(), SlabStats { live: 10, dead: 0, spill: 0 });
        // removals leave dead slots behind: ids are never reused
        s.remove(NodeId::new(3));
        s.remove(NodeId::new(7));
        let stats = s.stats();
        assert_eq!(stats, SlabStats { live: 8, dead: 2, spill: 0 });
        assert!((stats.dead_ratio() - 0.2).abs() < 1e-9);
        // far ids spill instead of growing the dense range
        s.insert(NodeId::new(1 << 40), 42);
        assert_eq!(s.stats(), SlabStats { live: 8, dead: 2, spill: 1 });
        // merging aggregates component-wise
        let merged = s.stats().merged(SlabStats { live: 1, dead: 2, spill: 3 });
        assert_eq!(merged, SlabStats { live: 9, dead: 4, spill: 4 });
    }

    #[test]
    fn from_iterator_builds_a_slab() {
        let s: IdSlab<u8> = (1..=5u64).map(|i| (NodeId::new(i), i as u8)).collect();
        assert_eq!(s.len(), 5);
        assert_eq!(s.get(NodeId::new(4)), Some(&4));
    }

    #[test]
    fn assert_compact_accepts_dense_and_rejects_churned_slabs() {
        let mut s: IdSlab<u8> = (1..=5u64).map(|i| (NodeId::new(i), i as u8)).collect();
        s.assert_compact();
        s.remove(NodeId::new(3));
        s.assert_consistent(); // churn keeps the general invariants ...
        let churned = std::panic::catch_unwind(move || s.assert_compact());
        assert!(churned.is_err(), "... but the dead slot must fail assert_compact");
    }
}
