//! XML serialization.
//!
//! Two serializations are provided:
//!
//! * the **plain** form (`write_document`, `write_fragment`) — ordinary XML;
//! * the **identified** form (`write_document_identified`) — XML in which node
//!   identifiers are embedded in the document itself, mirroring the paper's
//!   prototype where "node identifiers and labeling have been stored within the
//!   related documents" (§4.3). Element identifiers are stored in a reserved
//!   `_xid` attribute, attribute-node identifiers in `_xaid`, and each text node
//!   is preceded by a `<?xtid N?>` processing instruction carrying its
//!   identifier (a PI is used so that the format stays streamable). The
//!   identified form is what PUL producers and the executor exchange, and it is
//!   the input of the streaming PUL evaluator.

use crate::document::Document;
use crate::node::{NodeId, NodeKind};

/// Reserved attribute carrying the identifier of an element node.
pub const XID_ATTR: &str = "_xid";
/// Reserved attribute carrying the identifiers of the attribute nodes of an element.
pub const XAID_ATTR: &str = "_xaid";

/// Escapes character data (text content).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes an attribute value (double-quoted).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

fn write_node(doc: &Document, id: NodeId, identified: bool, out: &mut String) {
    let Ok(data) = doc.node(id) else { return };
    match data.kind {
        NodeKind::Text => {
            if identified {
                out.push_str("<?xtid ");
                out.push_str(&id.as_u64().to_string());
                out.push_str("?>");
            }
            out.push_str(&escape_text(data.value.as_deref().unwrap_or("")));
        }
        NodeKind::Attribute => {
            // A standalone attribute fragment: serialize as name="value".
            out.push_str(data.name.as_deref().unwrap_or(""));
            out.push_str("=\"");
            out.push_str(&escape_attr(data.value.as_deref().unwrap_or("")));
            out.push('"');
        }
        NodeKind::Element => {
            let name = data.name.as_deref().unwrap_or("");
            out.push('<');
            out.push_str(name);
            if identified {
                out.push(' ');
                out.push_str(XID_ATTR);
                out.push_str("=\"");
                out.push_str(&id.as_u64().to_string());
                out.push('"');
                if !data.attributes.is_empty() {
                    let pairs: Vec<String> = data
                        .attributes
                        .iter()
                        .filter_map(|&a| {
                            let ad = doc.node(a).ok()?;
                            Some(format!("{}:{}", ad.name.as_deref().unwrap_or(""), a.as_u64()))
                        })
                        .collect();
                    out.push(' ');
                    out.push_str(XAID_ATTR);
                    out.push_str("=\"");
                    out.push_str(&pairs.join(" "));
                    out.push('"');
                }
            }
            for &a in &data.attributes {
                if let Ok(ad) = doc.node(a) {
                    out.push(' ');
                    out.push_str(ad.name.as_deref().unwrap_or(""));
                    out.push_str("=\"");
                    out.push_str(&escape_attr(ad.value.as_deref().unwrap_or("")));
                    out.push('"');
                }
            }
            if data.children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for &c in &data.children {
                    write_node(doc, c, identified, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
    }
}

/// Serializes the whole document (plain form, no XML declaration).
pub fn write_document(doc: &Document) -> String {
    match doc.root() {
        Some(r) => write_fragment(doc, r),
        None => String::new(),
    }
}

/// Serializes the subtree rooted at `root` (plain form).
pub fn write_fragment(doc: &Document, root: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, root, false, &mut out);
    out
}

/// Serializes the whole document in the identified form (node identifiers
/// embedded via the reserved `_xid` / `_xaid` / `_xtid` attributes).
pub fn write_document_identified(doc: &Document) -> String {
    match doc.root() {
        Some(r) => {
            let mut out = String::new();
            write_node(doc, r, true, &mut out);
            out
        }
        None => String::new(),
    }
}

/// Serializes the subtree rooted at `root` in the identified form.
pub fn write_fragment_identified(doc: &Document, root: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, root, true, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        let mut d = Document::new();
        let issue = d.new_element("issue");
        let vol = d.new_attribute("volume", "30");
        let a1 = d.new_element("article");
        let t = d.new_element("title");
        let txt = d.new_text("XML & \"updates\" <here>");
        d.set_root(issue).unwrap();
        d.add_attribute(issue, vol).unwrap();
        d.append_child(issue, a1).unwrap();
        d.append_child(a1, t).unwrap();
        d.append_child(t, txt).unwrap();
        d
    }

    #[test]
    fn plain_serialization_escapes_content() {
        let d = sample();
        let xml = write_document(&d);
        assert_eq!(
            xml,
            "<issue volume=\"30\"><article><title>XML &amp; \"updates\" &lt;here&gt;</title></article></issue>"
        );
    }

    #[test]
    fn empty_document_serializes_to_empty_string() {
        let d = Document::new();
        assert_eq!(write_document(&d), "");
        assert_eq!(write_document_identified(&d), "");
    }

    #[test]
    fn self_closing_for_empty_elements() {
        let mut d = Document::new();
        let e = d.new_element("authors");
        d.set_root(e).unwrap();
        assert_eq!(write_document(&d), "<authors/>");
    }

    #[test]
    fn identified_serialization_embeds_ids() {
        let d = sample();
        let xml = write_document_identified(&d);
        assert!(xml.contains("_xid=\"1\""), "root element id embedded: {xml}");
        assert!(xml.contains("_xaid=\"volume:2\""), "attribute id embedded: {xml}");
        assert!(xml.contains("<?xtid 5?>"), "text id embedded: {xml}");
        assert!(xml.contains("volume=\"30\""), "plain attribute still present");
    }

    #[test]
    fn attribute_escaping() {
        let mut d = Document::new();
        let e = d.new_element("e");
        let a = d.new_attribute("k", "a\"b<c>&d");
        d.set_root(e).unwrap();
        d.add_attribute(e, a).unwrap();
        let xml = write_document(&d);
        assert_eq!(xml, "<e k=\"a&quot;b&lt;c&gt;&amp;d\"/>");
    }

    #[test]
    fn fragment_of_attribute_node() {
        let mut d = Document::new();
        let a = d.new_attribute("initPage", "132");
        d.set_root(a).unwrap();
        assert_eq!(write_document(&d), "initPage=\"132\"");
    }
}
