//! # xdm — XML document model
//!
//! This crate provides the tree representation of XML documents used throughout
//! the workspace, following §2.1 of *Cavalieri, Guerrini, Mesiti — Dynamic
//! Reasoning on XML Updates (EDBT 2011)*.
//!
//! A document `D` is described by `(V, γ, λ, ν)`:
//!
//! * `V` — a set of nodes representing **elements**, **attributes** and **text**
//!   (element values);
//! * `γ` — a function associating with each node its children;
//! * `λ` — a labeling function giving element/attribute nodes a *name*;
//! * `ν` — a labeling function giving text/attribute nodes a *value*.
//!
//! Every node carries a unique identifier ([`NodeId`]) that is preserved upon
//! modification and never reused once the node is removed — the property
//! required by the paper for exchanging PULs across process boundaries (§4.1).
//!
//! The crate additionally provides:
//!
//! * [`Tree`] — standalone fragments used as parameters of update operations;
//! * an XML [`parser`] and [`writer`] built from scratch (no external XML
//!   dependencies), including an *identified* serialization that embeds node
//!   identifiers inside the document, mirroring the paper's prototype which
//!   stores identifiers and labels within the document;
//! * a SAX-style [`events`] module used by the streaming PUL evaluator;
//! * an apply [`journal`]: inside a journal scope every mutator records the
//!   inverse of its effect, so a failed or abandoned update is rolled back in
//!   O(change) instead of restoring an O(document) snapshot clone.

pub mod document;
pub mod error;
pub mod events;
pub mod journal;
pub mod node;
pub mod parser;
pub mod slab;
pub mod tree;
pub mod writer;

pub use document::{Document, OrderRel, SharedDocument};
pub use error::XdmError;
pub use events::{Event, EventReader};
pub use journal::{Journal, JournalMark};
pub use node::{NodeData, NodeId, NodeKind};
pub use slab::{IdSlab, SlabStats};
pub use tree::Tree;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, XdmError>;
