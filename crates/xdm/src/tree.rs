//! Standalone tree fragments used as update-operation parameters.
//!
//! The update primitives of Table 2 take a list `P = [T1, …, Tn]` of trees as
//! their second parameter. A [`Tree`] is a rooted fragment whose root may be an
//! element, attribute or text node (attribute trees are used by `insA` and by
//! attribute replacement). Internally it reuses the [`Document`] arena, so the
//! whole navigation/mutation API is available through `Deref`.

use std::fmt;
use std::ops::{Deref, DerefMut};

use crate::document::Document;
use crate::error::XdmError;
use crate::node::{NodeId, NodeKind};
use crate::Result;

/// A standalone XML fragment with a mandatory root node.
#[derive(Debug, Clone, Default)]
pub struct Tree {
    doc: Document,
}

impl Tree {
    /// Creates a tree from a document that already has a root.
    pub fn from_document(doc: Document) -> Result<Self> {
        doc.require_root()?;
        Ok(Tree { doc })
    }

    /// Builds a single-node element tree.
    pub fn element(name: impl Into<String>) -> Self {
        let mut doc = Document::new();
        let r = doc.new_element(name);
        doc.set_root(r).expect("root just created");
        Tree { doc }
    }

    /// Builds an element tree with a single text child: `<name>text</name>`.
    pub fn element_with_text(name: impl Into<String>, text: impl Into<String>) -> Self {
        let mut doc = Document::new();
        let r = doc.new_element(name);
        let t = doc.new_text(text);
        doc.set_root(r).expect("root just created");
        doc.append_child(r, t).expect("append text");
        Tree { doc }
    }

    /// Builds a single attribute-node tree: `name="value"`.
    pub fn attribute(name: impl Into<String>, value: impl Into<String>) -> Self {
        let mut doc = Document::new();
        let r = doc.new_attribute(name, value);
        doc.set_root(r).expect("root just created");
        Tree { doc }
    }

    /// Builds a single text-node tree.
    pub fn text(value: impl Into<String>) -> Self {
        let mut doc = Document::new();
        let r = doc.new_text(value);
        doc.set_root(r).expect("root just created");
        Tree { doc }
    }

    /// The root node of the fragment (`R(T)`).
    pub fn root_id(&self) -> NodeId {
        self.doc.root().expect("trees always have a root")
    }

    /// The kind of the root node.
    pub fn root_kind(&self) -> NodeKind {
        self.doc.kind(self.root_id()).expect("root exists")
    }

    /// The name of the root node, if it is an element or attribute.
    pub fn root_name(&self) -> Option<String> {
        self.doc.name(self.root_id()).ok().flatten().map(str::to_owned)
    }

    /// Immutable access to the underlying arena.
    pub fn as_document(&self) -> &Document {
        &self.doc
    }

    /// Mutable access to the underlying arena.
    pub fn as_document_mut(&mut self) -> &mut Document {
        &mut self.doc
    }

    /// Consumes the tree, returning the underlying arena.
    pub fn into_document(self) -> Document {
        self.doc
    }

    /// Re-assigns identifiers in preorder starting at `start` (used when a
    /// producer assigns identifiers to new nodes, §4.1). Returns the new root.
    pub fn assign_ids(&mut self, start: u64) -> NodeId {
        self.doc.assign_preorder_ids(start);
        self.root_id()
    }

    /// Deep structural equality (identifier agnostic).
    pub fn structurally_equal(&self, other: &Tree) -> bool {
        self.doc.subtree_equal(self.root_id(), &other.doc, other.root_id())
    }

    /// Number of nodes in the fragment.
    pub fn size(&self) -> usize {
        self.doc.node_count()
    }

    /// Validates that the fragment root has one of the given kinds; used by
    /// operation applicability conditions.
    pub fn expect_root_kind(&self, allowed: &[NodeKind]) -> Result<()> {
        let k = self.root_kind();
        if allowed.contains(&k) {
            Ok(())
        } else {
            Err(XdmError::InvalidStructure(format!(
                "fragment root has kind {k}, expected one of {allowed:?}"
            )))
        }
    }
}

impl Deref for Tree {
    type Target = Document;
    fn deref(&self) -> &Document {
        &self.doc
    }
}

impl DerefMut for Tree {
    fn deref_mut(&mut self) -> &mut Document {
        &mut self.doc
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::writer::write_fragment(&self.doc, self.root_id()))
    }
}

impl PartialEq for Tree {
    fn eq(&self, other: &Self) -> bool {
        self.structurally_equal(other)
    }
}

impl Eq for Tree {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_expected_roots() {
        let e = Tree::element("author");
        assert_eq!(e.root_kind(), NodeKind::Element);
        assert_eq!(e.root_name().as_deref(), Some("author"));

        let et = Tree::element_with_text("author", "G.Guerrini");
        assert_eq!(et.size(), 2);
        assert_eq!(et.text_content(et.root_id()), "G.Guerrini");

        let a = Tree::attribute("initPage", "132");
        assert_eq!(a.root_kind(), NodeKind::Attribute);
        assert_eq!(a.value(a.root_id()).unwrap(), Some("132"));

        let t = Tree::text("hello");
        assert_eq!(t.root_kind(), NodeKind::Text);
    }

    #[test]
    fn structural_equality_is_id_agnostic() {
        let mut t1 = Tree::element_with_text("author", "M.Mesiti");
        let t2 = Tree::element_with_text("author", "M.Mesiti");
        let t3 = Tree::element_with_text("author", "F.Cavalieri");
        t1.assign_ids(500);
        assert!(t1.structurally_equal(&t2));
        assert_eq!(t1, t2);
        assert!(!t1.structurally_equal(&t3));
    }

    #[test]
    fn expect_root_kind_enforces_applicability() {
        let a = Tree::attribute("k", "v");
        assert!(a.expect_root_kind(&[NodeKind::Attribute]).is_ok());
        assert!(a.expect_root_kind(&[NodeKind::Element, NodeKind::Text]).is_err());
    }

    #[test]
    fn from_document_requires_root() {
        let doc = Document::new();
        assert!(Tree::from_document(doc).is_err());
    }

    #[test]
    fn assign_ids_renumbers_in_preorder() {
        let mut t = Tree::element_with_text("a", "x");
        let root = t.assign_ids(100);
        assert_eq!(root.as_u64(), 100);
        let child = t.children(root).unwrap()[0];
        assert_eq!(child.as_u64(), 101);
    }

    #[test]
    fn display_serializes_fragment() {
        let t = Tree::element_with_text("author", "G.Guerrini");
        assert_eq!(t.to_string(), "<author>G.Guerrini</author>");
        let a = Tree::attribute("initPage", "132");
        assert_eq!(a.to_string(), "initPage=\"132\"");
    }
}
