//! PUL aggregation (§3.3): Fig. 5 rules, Algorithm 2, Definition 13.
//!
//! Aggregation turns a *sequence* of PULs `∆1; ∆2; …; ∆n` — where each PUL is
//! expressed against the document produced by the previous ones — into a
//! single PUL that cumulates their effects (and is substitutable to the
//! sequential application, Prop. 4). Differently from integration there is
//! nothing to reconcile: the net result of a sequential application is always
//! well defined; what has to be removed are the *dependencies* of later PULs
//! on the operations of earlier ones:
//!
//! * insertions of the same type on the same (original) node are merged so
//!   that the final order is one of those obtainable sequentially
//!   (rules A1/A2 within a PUL, C4/C5 across PULs);
//! * an operation of a later PUL overriding an earlier `ren`/`repV`/`repC` on
//!   the same node simply drops the earlier one (rule B3) — and, more
//!   generally, a later `del`/`repN`/`repC` drops the earlier operations it
//!   overrides, locally or on descendants;
//! * operations of a later PUL targeting nodes *inserted by an earlier PUL*
//!   are applied directly to the parameter trees that carry those nodes
//!   (rule D6), using the hash table of Algorithm 2 to locate them in `O(1)`.
//!
//! The only situation not handled — exactly as in the paper, which defers it
//! to the extended version — is a `repC` in an earlier PUL followed by a child
//! insertion (`ins↙`/`ins↓`/`ins↘`) on the same node in a later PUL; in that
//! case an explicit error is returned.

use std::collections::HashMap;

use pul::apply::{apply_pul, ApplyOptions};
use pul::{OpName, Pul, PulError, UpdateOp};
use xdm::{NodeId, Tree};

use crate::conflict::{local_override, non_local_override};

/// Provenance-tagged slot of the aggregated PUL under construction.
struct Slot {
    op: UpdateOp,
    pul_index: usize,
}

struct Aggregator {
    slots: Vec<Option<Slot>>,
    /// Slots indexed by (original-document) target node.
    by_target: HashMap<NodeId, Vec<usize>>,
    /// For every node carried inside the parameter trees of an aggregated
    /// operation: the slot that owns it (the `new` entries of Algorithm 2).
    new_owner: HashMap<NodeId, usize>,
}

impl Aggregator {
    fn new() -> Self {
        Aggregator { slots: Vec::new(), by_target: HashMap::new(), new_owner: HashMap::new() }
    }

    fn register_content(&mut self, slot: usize, op: &UpdateOp) {
        if let Some(trees) = op.content() {
            for tree in trees {
                for node in tree.preorder_from_root() {
                    self.new_owner.insert(node, slot);
                }
            }
        }
    }

    fn push(&mut self, op: UpdateOp, pul_index: usize) -> usize {
        let idx = self.slots.len();
        let target = op.target();
        self.register_content(idx, &op);
        self.slots.push(Some(Slot { op, pul_index }));
        self.by_target.entry(target).or_default().push(idx);
        idx
    }

    fn op(&self, idx: usize) -> Option<&Slot> {
        self.slots.get(idx).and_then(|s| s.as_ref())
    }

    /// Drops, from the aggregate built so far, the operations of *earlier*
    /// PULs that are overridden by `op` (a `del`, `repN` or `repC` of PUL
    /// `pul_index` targeting an original node). Mirrors reduction rules O1–O4
    /// but across sequential PULs.
    fn drop_overridden(&mut self, op: &UpdateOp, pul_index: usize, puls: &[Pul]) {
        let target = op.target();
        let target_label = puls.iter().find_map(|p| p.label(target));
        for idx in 0..self.slots.len() {
            let Some(slot) = &self.slots[idx] else { continue };
            if slot.pul_index >= pul_index {
                continue;
            }
            let earlier = &slot.op;
            let dropped = if earlier.target() == target {
                local_override(op, earlier)
            } else {
                match (target_label, puls.iter().find_map(|p| p.label(earlier.target()))) {
                    (Some(tl), Some(el)) => non_local_override(op, tl, earlier, el),
                    _ => false,
                }
            };
            if dropped {
                let removed = self.slots[idx].take().expect("slot checked above");
                if let Some(list) = self.by_target.get_mut(&removed.op.target()) {
                    list.retain(|&i| i != idx);
                }
            }
        }
    }

    fn collect(self, puls: &[Pul]) -> Pul {
        let mut out = Pul::new();
        for slot in self.slots.into_iter().flatten() {
            out.push(slot.op);
        }
        for p in puls {
            for l in p.labels().values() {
                out.add_label(l.clone());
            }
        }
        out
    }
}

/// Applies `op` (from PUL `pul_index`) to the parameter tree of the aggregated
/// operation in `owner_slot` that contains its target (rule D6).
fn apply_to_owned_tree(
    agg: &mut Aggregator,
    owner_slot: usize,
    op: &UpdateOp,
    pul_index: usize,
) -> Result<(), PulError> {
    let target = op.target();
    let Some(slot) = agg.slots[owner_slot].as_mut() else {
        // The owning operation has been dropped (overridden): the dependent
        // operation has no effect in the aggregate.
        return Ok(());
    };
    let Some(content) = slot.op.content_mut() else { return Ok(()) };
    let Some(tree_idx) = content.iter().position(|t| t.contains(target)) else {
        return Ok(());
    };

    let is_root = content[tree_idx].root_id() == target;
    match (is_root, op.name()) {
        // Structural operations on the root of an inserted tree are resolved
        // on the owner's content list itself.
        (true, OpName::Delete) => {
            content.remove(tree_idx);
        }
        (true, OpName::ReplaceNode) => {
            let replacement = op.content().unwrap_or(&[]).to_vec();
            content.splice(tree_idx..=tree_idx, replacement);
        }
        (true, OpName::InsBefore) => {
            let new = op.content().unwrap_or(&[]).to_vec();
            content.splice(tree_idx..tree_idx, new);
        }
        (true, OpName::InsAfter) => {
            let new = op.content().unwrap_or(&[]).to_vec();
            content.splice(tree_idx + 1..tree_idx + 1, new);
        }
        // Everything else is applied to the tree as a one-operation PUL.
        _ => {
            let single: Pul = std::iter::once(op.clone()).collect();
            let tree_doc = content[tree_idx].as_document_mut();
            apply_pul(
                tree_doc,
                &single,
                &ApplyOptions { validate: false, preserve_content_ids: true },
            )?;
        }
    }
    let owner_op = agg.slots[owner_slot].as_ref().expect("still present").op.clone();
    agg.register_content(owner_slot, &owner_op);
    let _ = pul_index;
    Ok(())
}

/// Aggregates a sequence of PULs into a single PUL (Def. 13, Algorithm 2).
///
/// The `k`-th PUL of the input is assumed to be expressed against the document
/// obtained by applying the previous `k-1` PULs (with parameter-tree node
/// identifiers preserved, as a producer does when working on its local copy).
pub fn aggregate(puls: &[Pul]) -> Result<Pul, PulError> {
    let mut agg = Aggregator::new();
    for (k, pul) in puls.iter().enumerate() {
        for op in pul.ops() {
            let target = op.target();
            // ---- rule D6: the target is a node inserted by a previous PUL --
            if let Some(&owner) = agg.new_owner.get(&target) {
                apply_to_owned_tree(&mut agg, owner, op, k)?;
                continue;
            }
            // ---- the target is an original document node --------------------
            let existing: Vec<usize> = agg.by_target.get(&target).cloned().unwrap_or_default();
            match op.name() {
                // rule B3: a later ren/repV/repC on the same node supersedes
                // the earlier one.
                OpName::Rename | OpName::ReplaceValue | OpName::ReplaceContent => {
                    for idx in &existing {
                        let same = agg.op(*idx).map(|s| s.op.name() == op.name()).unwrap_or(false);
                        if same {
                            agg.slots[*idx] = None;
                        }
                    }
                    if let Some(list) = agg.by_target.get_mut(&target) {
                        list.retain(|i| agg.slots[*i].is_some());
                    }
                    agg.push(op.clone(), k);
                }
                // rules A1/A2/C4/C5: insertions of the same type on the same
                // node are merged, with the parameter order dictated by the
                // insertion direction.
                OpName::InsBefore
                | OpName::InsAfter
                | OpName::InsFirst
                | OpName::InsLast
                | OpName::InsInto
                | OpName::InsAttributes => {
                    // the unsupported corner case: an earlier repC followed by
                    // a child insertion on the same node.
                    let repc_before = existing.iter().any(|&i| {
                        agg.op(i)
                            .map(|s| s.pul_index < k && s.op.name() == OpName::ReplaceContent)
                            .unwrap_or(false)
                    });
                    if repc_before && op.inserts_children() {
                        return Err(PulError::Dynamic(format!(
                            "aggregation of a repC on node {target} followed by a child insertion \
                             is not supported (deferred by the paper to its extended version)"
                        )));
                    }
                    let same_slot = existing
                        .iter()
                        .copied()
                        .find(|&i| agg.op(i).map(|s| s.op.name() == op.name()).unwrap_or(false));
                    match same_slot {
                        Some(idx) => {
                            let slot = agg.slots[idx].as_ref().expect("found above");
                            let existing_content: Vec<Tree> =
                                slot.op.content().unwrap_or(&[]).to_vec();
                            let new_content: Vec<Tree> = op.content().unwrap_or(&[]).to_vec();
                            let same_pul = slot.pul_index == k;
                            // A1/A2 (same PUL) and C4 (←, ↘): existing first;
                            // C5 (→, ↙, and ins↓/insA treated alike): new first.
                            let combined: Vec<Tree> = if same_pul
                                || matches!(
                                    op.name(),
                                    OpName::InsBefore | OpName::InsLast | OpName::InsAttributes
                                ) {
                                existing_content.into_iter().chain(new_content).collect()
                            } else {
                                new_content.into_iter().chain(existing_content).collect()
                            };
                            let merged = match op.name() {
                                OpName::InsBefore => UpdateOp::ins_before(target, combined),
                                OpName::InsAfter => UpdateOp::ins_after(target, combined),
                                OpName::InsFirst => UpdateOp::ins_first(target, combined),
                                OpName::InsLast => UpdateOp::ins_last(target, combined),
                                OpName::InsInto => UpdateOp::ins_into(target, combined),
                                OpName::InsAttributes => UpdateOp::ins_attributes(target, combined),
                                _ => unreachable!(),
                            };
                            agg.register_content(idx, &merged);
                            agg.slots[idx] = Some(Slot { op: merged, pul_index: k });
                        }
                        None => {
                            agg.push(op.clone(), k);
                        }
                    }
                }
                // a later deletion / node replacement drops the earlier
                // operations it overrides (locally and on descendants).
                OpName::Delete | OpName::ReplaceNode => {
                    agg.drop_overridden(op, k, puls);
                    agg.push(op.clone(), k);
                }
            }
            // a later repC also overrides earlier child insertions and
            // descendant operations.
            if op.name() == OpName::ReplaceContent {
                agg.drop_overridden(op, k, puls);
            }
        }
    }
    Ok(agg.collect(puls))
}

/// Aggregates two PULs: `∆1 ⤙ ∆2`.
pub fn aggregate_pair(first: &Pul, second: &Pul) -> Result<Pul, PulError> {
    aggregate(&[first.clone(), second.clone()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pul::obtainable::canonical_string;
    use xdm::parser::{parse_document, parse_fragment_with_first_id};
    use xdm::writer::write_document;
    use xdm::Document;
    use xlabel::Labeling;

    /// `<db(1)><articles(2)>…</articles><count(3)>7(4)</count><note(5)>n(6)</note></db>`
    fn fixture() -> (Document, Labeling) {
        let doc = parse_document(
            "<db><articles><old>x</old></articles><count>7</count><note>n</note></db>",
        )
        .unwrap();
        let labeling = Labeling::assign(&doc);
        (doc, labeling)
    }

    /// Applies the PULs sequentially (producer mode: parameter identifiers are
    /// preserved) and compares the result with a single application of the
    /// aggregated PUL — the substitutability statement of Prop. 4, checked on
    /// the deterministic evaluator.
    fn assert_aggregation_matches_sequential(doc: &Document, puls: &[Pul]) {
        let mut sequential = doc.clone();
        for p in puls {
            apply_pul(
                &mut sequential,
                p,
                &ApplyOptions { validate: false, preserve_content_ids: true },
            )
            .unwrap();
        }
        let aggregated = aggregate(puls).unwrap();
        let mut once = doc.clone();
        apply_pul(
            &mut once,
            &aggregated,
            &ApplyOptions { validate: false, preserve_content_ids: true },
        )
        .unwrap();
        assert_eq!(
            canonical_string(&sequential),
            canonical_string(&once),
            "aggregate must cumulate the sequential effects\nsequential: {}\naggregated: {}",
            write_document(&sequential),
            write_document(&once)
        );
    }

    #[test]
    fn example_8_aggregation_with_d6() {
        // Mirrors Example 8: ∆1 inserts an <article> (ids 24–26) and updates a
        // text; ∆2 adds two authors (27–30) inside the inserted article and
        // renames <note>; ∆3 replaces one of the new authors (31–32), renames
        // <note> again and rewrites the new title text.
        let (doc, labels) = fixture();
        let articles = doc.find_element("articles").unwrap();
        let count_text = doc.children(doc.find_element("count").unwrap()).unwrap()[0];
        let note = doc.find_element("note").unwrap();

        let article_tree =
            parse_fragment_with_first_id("<article><title>XML</title></article>", 24).unwrap();
        let p1 = Pul::from_ops(
            vec![
                UpdateOp::ins_last(articles, vec![article_tree]),
                UpdateOp::replace_value(count_text, "13"),
            ],
            &labels,
        );
        let authors_tree_1 = parse_fragment_with_first_id("<author>G G</author>", 27).unwrap();
        let authors_tree_2 = parse_fragment_with_first_id("<author>M M</author>", 29).unwrap();
        let p2 = Pul::from_ops(
            vec![
                UpdateOp::ins_last(24u64, vec![authors_tree_1, authors_tree_2]),
                UpdateOp::rename(note, "title"),
            ],
            &labels,
        );
        let replacement = parse_fragment_with_first_id("<author>F C</author>", 31).unwrap();
        let p3 = Pul::from_ops(
            vec![
                UpdateOp::replace_node(29u64, vec![replacement]),
                UpdateOp::rename(note, "name"),
                UpdateOp::replace_value(26u64, "On XML"),
            ],
            &labels,
        );

        // ∆1 ⤙ ∆2
        let agg12 = aggregate(&[p1.clone(), p2.clone()]).unwrap();
        assert_eq!(agg12.len(), 3, "{agg12}");
        let ins = agg12.ops().iter().find(|o| o.name() == OpName::InsLast).unwrap();
        let tree = &ins.content().unwrap()[0];
        assert_eq!(tree.children(tree.root_id()).unwrap().len(), 3, "title + two authors");
        assert!(agg12
            .ops()
            .iter()
            .any(|o| matches!(o, UpdateOp::Rename { name, .. } if name == "title")));

        // ∆1 ⤙ ∆2 ⤙ ∆3
        let agg123 = aggregate(&[p1.clone(), p2.clone(), p3.clone()]).unwrap();
        assert_eq!(agg123.len(), 3, "{agg123}");
        let ins = agg123.ops().iter().find(|o| o.name() == OpName::InsLast).unwrap();
        let tree = &ins.content().unwrap()[0];
        let kids = tree.children(tree.root_id()).unwrap().to_vec();
        assert_eq!(kids.len(), 3);
        // the title text has been rewritten by ∆3 through rule D6
        assert_eq!(tree.text_content(kids[0]), "On XML");
        // the second author (id 29) has been replaced by the ∆3 tree (F C)
        let author_texts: Vec<String> = kids[1..].iter().map(|&k| tree.text_content(k)).collect();
        assert_eq!(author_texts, vec!["G G", "F C"]);
        // the rename of <note> has been superseded (rule B3)
        assert!(agg123
            .ops()
            .iter()
            .any(|o| matches!(o, UpdateOp::Rename { name, .. } if name == "name")));
        assert!(!agg123
            .ops()
            .iter()
            .any(|o| matches!(o, UpdateOp::Rename { name, .. } if name == "title")));

        assert_aggregation_matches_sequential(&doc, &[p1, p2, p3]);
    }

    #[test]
    fn rule_b3_later_modification_wins() {
        let (doc, labels) = fixture();
        let note = doc.find_element("note").unwrap();
        let note_text = doc.children(note).unwrap()[0];
        let p1 = Pul::from_ops(
            vec![UpdateOp::rename(note, "a"), UpdateOp::replace_value(note_text, "1")],
            &labels,
        );
        let p2 = Pul::from_ops(
            vec![UpdateOp::rename(note, "b"), UpdateOp::replace_value(note_text, "2")],
            &labels,
        );
        let agg = aggregate_pair(&p1, &p2).unwrap();
        assert_eq!(agg.len(), 2, "{agg}");
        assert!(agg
            .ops()
            .iter()
            .any(|o| matches!(o, UpdateOp::Rename { name, .. } if name == "b")));
        assert!(agg
            .ops()
            .iter()
            .any(|o| matches!(o, UpdateOp::ReplaceValue { value, .. } if value == "2")));
        assert_aggregation_matches_sequential(&doc, &[p1, p2]);
    }

    #[test]
    fn rules_c4_c5_insertion_direction() {
        let (doc, labels) = fixture();
        let articles = doc.find_element("articles").unwrap();
        let old = doc.find_element("old").unwrap();

        // ins↘ / ins← : earlier content first
        let t = |text: &str, base: u64| {
            parse_fragment_with_first_id(&format!("<n>{text}</n>"), base).unwrap()
        };
        let p1 = Pul::from_ops(
            vec![
                UpdateOp::ins_last(articles, vec![t("L1", 100)]),
                UpdateOp::ins_before(old, vec![t("B1", 110)]),
            ],
            &labels,
        );
        let p2 = Pul::from_ops(
            vec![
                UpdateOp::ins_last(articles, vec![t("L2", 120)]),
                UpdateOp::ins_before(old, vec![t("B2", 130)]),
            ],
            &labels,
        );
        let agg = aggregate_pair(&p1, &p2).unwrap();
        assert_eq!(agg.len(), 2);
        for op in agg.ops() {
            let texts: Vec<String> =
                op.content().unwrap().iter().map(|t| t.text_content(t.root_id())).collect();
            match op.name() {
                OpName::InsLast => assert_eq!(texts, vec!["L1", "L2"]),
                OpName::InsBefore => assert_eq!(texts, vec!["B1", "B2"]),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_aggregation_matches_sequential(&doc, &[p1, p2]);

        // ins↙ / ins→ : later content first
        let p1 = Pul::from_ops(
            vec![
                UpdateOp::ins_first(articles, vec![t("F1", 140)]),
                UpdateOp::ins_after(old, vec![t("A1", 150)]),
            ],
            &labels,
        );
        let p2 = Pul::from_ops(
            vec![
                UpdateOp::ins_first(articles, vec![t("F2", 160)]),
                UpdateOp::ins_after(old, vec![t("A2", 170)]),
            ],
            &labels,
        );
        let agg = aggregate_pair(&p1, &p2).unwrap();
        for op in agg.ops() {
            let texts: Vec<String> =
                op.content().unwrap().iter().map(|t| t.text_content(t.root_id())).collect();
            match op.name() {
                OpName::InsFirst => assert_eq!(texts, vec!["F2", "F1"]),
                OpName::InsAfter => assert_eq!(texts, vec!["A2", "A1"]),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_aggregation_matches_sequential(&doc, &[p1, p2]);
    }

    #[test]
    fn rules_a1_a2_same_pul_insertions() {
        let (doc, labels) = fixture();
        let articles = doc.find_element("articles").unwrap();
        let t = |text: &str, base: u64| {
            parse_fragment_with_first_id(&format!("<n>{text}</n>"), base).unwrap()
        };
        let p1 = Pul::from_ops(
            vec![
                UpdateOp::ins_after(doc.find_element("old").unwrap(), vec![t("X1", 100)]),
                UpdateOp::ins_after(doc.find_element("old").unwrap(), vec![t("X2", 110)]),
            ],
            &labels,
        );
        let p2 = Pul::from_ops(vec![UpdateOp::ins_last(articles, vec![t("Y", 120)])], &labels);
        let agg = aggregate_pair(&p1, &p2).unwrap();
        // the two same-PUL ins→ are merged keeping their order (rule A1)
        let merged = agg.ops().iter().find(|o| o.name() == OpName::InsAfter).unwrap();
        let texts: Vec<String> =
            merged.content().unwrap().iter().map(|t| t.text_content(t.root_id())).collect();
        assert_eq!(texts, vec!["X1", "X2"]);
    }

    #[test]
    fn later_delete_drops_earlier_ops_on_the_node_and_descendants() {
        let (doc, labels) = fixture();
        let articles = doc.find_element("articles").unwrap();
        let old = doc.find_element("old").unwrap();
        let note = doc.find_element("note").unwrap();
        let p1 = Pul::from_ops(
            vec![
                UpdateOp::rename(articles, "list"),
                UpdateOp::replace_value(doc.children(old).unwrap()[0], "changed"),
                UpdateOp::rename(note, "kept"),
            ],
            &labels,
        );
        let p2 = Pul::from_ops(vec![UpdateOp::delete(articles)], &labels);
        let agg = aggregate_pair(&p1, &p2).unwrap();
        assert_eq!(agg.len(), 2, "{agg}");
        assert!(agg.ops().iter().any(|o| o.name() == OpName::Delete));
        assert!(agg
            .ops()
            .iter()
            .any(|o| matches!(o, UpdateOp::Rename { name, .. } if name == "kept")));
        assert_aggregation_matches_sequential(&doc, &[p1, p2]);
    }

    #[test]
    fn delete_of_a_previously_inserted_node_cancels_it() {
        let (doc, labels) = fixture();
        let articles = doc.find_element("articles").unwrap();
        let tree = parse_fragment_with_first_id("<article><title>t</title></article>", 50).unwrap();
        let p1 = Pul::from_ops(vec![UpdateOp::ins_last(articles, vec![tree])], &labels);
        // delete the inserted article root (id 50) and the title text of the
        // inserted tree (52 is the text node)
        let p2 = Pul::from_ops(vec![UpdateOp::delete(50u64)], &labels);
        let agg = aggregate_pair(&p1, &p2).unwrap();
        let ins = agg.ops().iter().find(|o| o.name() == OpName::InsLast).unwrap();
        assert!(ins.content().unwrap().is_empty(), "the inserted tree has been removed again");
        assert_aggregation_matches_sequential(&doc, &[p1, p2]);
    }

    #[test]
    fn sibling_insertion_relative_to_an_inserted_node() {
        let (doc, labels) = fixture();
        let articles = doc.find_element("articles").unwrap();
        let tree = parse_fragment_with_first_id("<article>first</article>", 60).unwrap();
        let p1 = Pul::from_ops(vec![UpdateOp::ins_last(articles, vec![tree])], &labels);
        let before = parse_fragment_with_first_id("<article>zero</article>", 70).unwrap();
        let after = parse_fragment_with_first_id("<article>second</article>", 80).unwrap();
        let p2 = Pul::from_ops(
            vec![
                UpdateOp::ins_before(60u64, vec![before]),
                UpdateOp::ins_after(60u64, vec![after]),
            ],
            &labels,
        );
        let agg = aggregate_pair(&p1, &p2).unwrap();
        let ins = agg.ops().iter().find(|o| o.name() == OpName::InsLast).unwrap();
        let texts: Vec<String> =
            ins.content().unwrap().iter().map(|t| t.text_content(t.root_id())).collect();
        assert_eq!(texts, vec!["zero", "first", "second"]);
        assert_aggregation_matches_sequential(&doc, &[p1, p2]);
    }

    #[test]
    fn unsupported_repc_then_child_insertion_is_an_error() {
        let (doc, labels) = fixture();
        let articles = doc.find_element("articles").unwrap();
        let p1 =
            Pul::from_ops(vec![UpdateOp::replace_content(articles, Some("t".into()))], &labels);
        let p2 =
            Pul::from_ops(vec![UpdateOp::ins_last(articles, vec![Tree::element("x")])], &labels);
        assert!(matches!(aggregate_pair(&p1, &p2), Err(PulError::Dynamic(_))));
    }

    #[test]
    fn aggregation_of_a_single_pul_is_identity_up_to_merging() {
        let (doc, labels) = fixture();
        let note = doc.find_element("note").unwrap();
        let p1 = Pul::from_ops(
            vec![UpdateOp::rename(note, "x"), UpdateOp::delete(doc.find_element("old").unwrap())],
            &labels,
        );
        let agg = aggregate(std::slice::from_ref(&p1)).unwrap();
        assert_eq!(agg.len(), 2);
        assert_aggregation_matches_sequential(&doc, &[p1]);
    }

    #[test]
    fn empty_sequence_aggregates_to_empty() {
        let agg = aggregate(&[]).unwrap();
        assert!(agg.is_empty());
    }
}
