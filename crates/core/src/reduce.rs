//! PUL reduction (§3.1): Fig. 2 rules, Defs. 7–9, Prop. 1.
//!
//! Reduction transforms a PUL into a more compact PUL with the *same or more
//! specific* effect (it is substitutable to the original, Prop. 1) by
//!
//! * removing operations whose effects are overridden by a `repN`, `del` or
//!   `repC` on the same node or on an ancestor (rules `O1`–`O4`);
//! * collapsing insertion operations targeted at the same node, at sibling
//!   nodes or at parent/child nodes (rules `I5`–`I18`);
//! * collapsing insertions into replacement operations (`IR8`–`IR20`).
//!
//! Rules are organised in nine stages and applied stage by stage. The
//! **deterministic reduction** (Def. 8) adds a tenth stage that rewrites the
//! remaining `ins↓` operations into `ins↙`, making the PUL semantics
//! deterministic. The **canonical form** (Def. 9) additionally constrains the
//! order of rule applications (always the `<p`-least applicable pair), which
//! makes the result unique for a given PUL.
//!
//! Structural side conditions (`/c`, `/a`, `/←c`, `/→c`, `≺s`, `//d`, `//¬a_d`)
//! are evaluated on the labels carried by the PUL; pairs whose labels are
//! missing simply never match, which keeps reduction sound (fewer rules fire).

use std::collections::HashMap;

use pul::{OpClass, OpName, Pul, UpdateOp};
use xdm::{NodeId, Tree};
use xlabel::NodeLabel;

/// Which reduction is requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionKind {
    /// Stages 1–9 (Def. 7): the result may still contain `ins↓`.
    Plain,
    /// Stages 1–10 (Def. 8): `ins↓` is rewritten into `ins↙`.
    Deterministic,
    /// Stages 1–10 with `<p`-least pair selection (Def. 9): unique result.
    Canonical,
}

/// Label-based evaluation of the Table 1 predicates between operation targets.
struct Ctx<'a> {
    labels: &'a HashMap<NodeId, NodeLabel>,
}

impl<'a> Ctx<'a> {
    fn label(&self, id: NodeId) -> Option<&NodeLabel> {
        self.labels.get(&id)
    }

    fn pair(&self, a: NodeId, b: NodeId) -> Option<(&NodeLabel, &NodeLabel)> {
        Some((self.label(a)?, self.label(b)?))
    }

    fn is_child(&self, a: NodeId, b: NodeId) -> bool {
        self.pair(a, b).map(|(x, y)| x.is_child_of(y)).unwrap_or(false)
    }

    fn is_attribute(&self, a: NodeId, b: NodeId) -> bool {
        self.pair(a, b).map(|(x, y)| x.is_attribute_of(y)).unwrap_or(false)
    }

    fn is_first_child(&self, a: NodeId, b: NodeId) -> bool {
        self.pair(a, b).map(|(x, y)| x.is_first_child_of(y)).unwrap_or(false)
    }

    fn is_last_child(&self, a: NodeId, b: NodeId) -> bool {
        self.pair(a, b).map(|(x, y)| x.is_last_child_of(y)).unwrap_or(false)
    }

    fn is_left_sibling(&self, a: NodeId, b: NodeId) -> bool {
        self.pair(a, b).map(|(x, y)| x.is_left_sibling_of(y)).unwrap_or(false)
    }

    fn is_descendant(&self, a: NodeId, b: NodeId) -> bool {
        self.pair(a, b).map(|(x, y)| x.is_descendant_of(y)).unwrap_or(false)
    }

    fn is_descendant_not_attr(&self, a: NodeId, b: NodeId) -> bool {
        self.pair(a, b).map(|(x, y)| x.is_descendant_not_attr_of(y)).unwrap_or(false)
    }

    /// Document order of two targets (`≺`), falling back to identifier order
    /// when labels are missing (only used for canonical tie-breaking).
    fn precedes(&self, a: NodeId, b: NodeId) -> bool {
        match self.pair(a, b) {
            Some((x, y)) => x.precedes(y),
            None => a < b,
        }
    }
}

fn concat_content(first: &UpdateOp, second: &UpdateOp) -> Vec<Tree> {
    let mut out: Vec<Tree> = first.content().unwrap_or(&[]).to_vec();
    out.extend(second.content().unwrap_or(&[]).iter().cloned());
    out
}

fn rebuild(name: OpName, target: NodeId, content: Vec<Tree>) -> UpdateOp {
    match name {
        OpName::InsBefore => UpdateOp::ins_before(target, content),
        OpName::InsAfter => UpdateOp::ins_after(target, content),
        OpName::InsFirst => UpdateOp::ins_first(target, content),
        OpName::InsLast => UpdateOp::ins_last(target, content),
        OpName::InsInto => UpdateOp::ins_into(target, content),
        OpName::InsAttributes => UpdateOp::ins_attributes(target, content),
        OpName::ReplaceNode => UpdateOp::replace_node(target, content),
        other => unreachable!("rebuild called with non-tree operation {other:?}"),
    }
}

/// Tries to apply a Fig. 2 rule of the given stage to the ordered pair
/// `(op1, op2)`. Returns the reduced operation when a rule matches.
fn try_rule(stage: u8, op1: &UpdateOp, op2: &UpdateOp, ctx: &Ctx<'_>) -> Option<UpdateOp> {
    use OpName::*;
    let (t1, t2) = (op1.target(), op2.target());
    let (n1, n2) = (op1.name(), op2.name());
    match stage {
        1 => {
            // O1: any op (except repN and sibling insertions) on v is overridden
            // by a repN/del on the same v.
            if t1 == t2
                && matches!(n2, ReplaceNode | Delete)
                && matches!(
                    n1,
                    Rename
                        | ReplaceValue
                        | ReplaceContent
                        | Delete
                        | InsFirst
                        | InsLast
                        | InsInto
                        | InsAttributes
                )
            {
                return Some(op2.clone());
            }
            // O2: children insertions on v are overridden by a repC on v.
            if t1 == t2 && n2 == ReplaceContent && matches!(n1, InsFirst | InsInto | InsLast) {
                return Some(op2.clone());
            }
            // O3: any op on a descendant of a repN/del target is overridden.
            if matches!(n2, ReplaceNode | Delete) && ctx.is_descendant(t1, t2) {
                return Some(op2.clone());
            }
            // O4: any op on a (non-attribute) descendant of a repC target is overridden.
            if n2 == ReplaceContent && ctx.is_descendant_not_attr(t1, t2) {
                return Some(op2.clone());
            }
            // I5: same-type insertions on the same target are concatenated.
            if t1 == t2 && n1 == n2 && op1.class() == OpClass::Insertion {
                return Some(rebuild(n1, t1, concat_content(op1, op2)));
            }
            None
        }
        2 => {
            // I6: ins↓(v, L1), ins↙(v, L2) → ins↙(v, [L2, L1])
            if t1 == t2 && n1 == InsInto && n2 == InsFirst {
                return Some(rebuild(InsFirst, t1, concat_content(op2, op1)));
            }
            None
        }
        3 => {
            // I7: ins↓(v, L1), ins↘(v, L2) → ins↘(v, [L1, L2])
            if t1 == t2 && n1 == InsInto && n2 == InsLast {
                return Some(rebuild(InsLast, t1, concat_content(op1, op2)));
            }
            None
        }
        4 => {
            // IR8: repN(v, L1), ins←(v, L2) → repN(v, [L2, L1])
            if t1 == t2 && n1 == ReplaceNode && n2 == InsBefore {
                return Some(rebuild(ReplaceNode, t1, concat_content(op2, op1)));
            }
            // IR9: repN(v, L1), ins→(v, L2) → repN(v, [L1, L2])
            if t1 == t2 && n1 == ReplaceNode && n2 == InsAfter {
                return Some(rebuild(ReplaceNode, t1, concat_content(op1, op2)));
            }
            None
        }
        5 => {
            // I10: ins↓(v, L1), ins←(v', L2), v' /c v → ins←(v', [L1, L2])
            if n1 == InsInto && n2 == InsBefore && ctx.is_child(t2, t1) {
                return Some(rebuild(InsBefore, t2, concat_content(op1, op2)));
            }
            None
        }
        6 => {
            // I11: ins↓(v, L1), ins→(v', L2), v' /c v → ins→(v', [L2, L1])
            if n1 == InsInto && n2 == InsAfter && ctx.is_child(t2, t1) {
                return Some(rebuild(InsAfter, t2, concat_content(op2, op1)));
            }
            None
        }
        7 => {
            // IR12: repN(v, L1), ins↓(v', L2), v /c v' → repN(v, [L1, L2])
            if n1 == ReplaceNode && n2 == InsInto && ctx.is_child(t1, t2) {
                return Some(rebuild(ReplaceNode, t1, concat_content(op1, op2)));
            }
            None
        }
        8 => {
            // IR13: repN(v, L1), insA(v', L2), v /a v' → repN(v, [L1, L2])
            if n1 == ReplaceNode && n2 == InsAttributes && ctx.is_attribute(t1, t2) {
                return Some(rebuild(ReplaceNode, t1, concat_content(op1, op2)));
            }
            // I14: ins←(v, L1), ins↙(v', L2), v /←c v' → ins←(v, [L2, L1])
            if n1 == InsBefore && n2 == InsFirst && ctx.is_first_child(t1, t2) {
                return Some(rebuild(InsBefore, t1, concat_content(op2, op1)));
            }
            // I15: ins→(v, L1), ins↘(v', L2), v /→c v' → ins→(v, [L1, L2])
            if n1 == InsAfter && n2 == InsLast && ctx.is_last_child(t1, t2) {
                return Some(rebuild(InsAfter, t1, concat_content(op1, op2)));
            }
            // IR16: repN(v, L1), ins↙(v', L2), v /←c v' → repN(v, [L2, L1])
            if n1 == ReplaceNode && n2 == InsFirst && ctx.is_first_child(t1, t2) {
                return Some(rebuild(ReplaceNode, t1, concat_content(op2, op1)));
            }
            // IR17: repN(v, L1), ins↘(v', L2), v /→c v' → repN(v, [L1, L2])
            if n1 == ReplaceNode && n2 == InsLast && ctx.is_last_child(t1, t2) {
                return Some(rebuild(ReplaceNode, t1, concat_content(op1, op2)));
            }
            None
        }
        9 => {
            // I18: ins←(v, L1), ins→(v', L2), v' ≺s v → ins←(v, [L2, L1])
            if n1 == InsBefore && n2 == InsAfter && ctx.is_left_sibling(t2, t1) {
                return Some(rebuild(InsBefore, t1, concat_content(op2, op1)));
            }
            // IR19: repN(v, L1), ins→(v', L2), v' ≺s v → repN(v, [L2, L1])
            if n1 == ReplaceNode && n2 == InsAfter && ctx.is_left_sibling(t2, t1) {
                return Some(rebuild(ReplaceNode, t1, concat_content(op2, op1)));
            }
            // IR20: repN(v, L1), ins←(v', L2), v ≺s v' → repN(v, [L1, L2])
            if n1 == ReplaceNode && n2 == InsBefore && ctx.is_left_sibling(t1, t2) {
                return Some(rebuild(ReplaceNode, t1, concat_content(op1, op2)));
            }
            None
        }
        _ => None,
    }
}

/// Slot-based working set of operations.
struct Work {
    slots: Vec<Option<UpdateOp>>,
}

impl Work {
    fn active(&self) -> impl Iterator<Item = (usize, &UpdateOp)> {
        self.slots.iter().enumerate().filter_map(|(i, o)| o.as_ref().map(|op| (i, op)))
    }

    /// Applies the result of a rule on slots `(i, j)`: the result replaces the
    /// slot whose operation target matches the result target, the other slot is
    /// cleared.
    fn apply(&mut self, i: usize, j: usize, result: UpdateOp) {
        let tj = self.slots[j].as_ref().map(|o| o.target());
        if tj == Some(result.target()) {
            self.slots[j] = Some(result);
            self.slots[i] = None;
        } else {
            self.slots[i] = Some(result);
            self.slots[j] = None;
        }
    }
}

/// Candidate ordered pairs for a stage, generated from hash indexes so that
/// only pairs that can possibly satisfy a rule's side condition are examined
/// (same target, parent/child, attribute/owner, sibling or ancestor).
fn candidates(stage: u8, work: &Work, ctx: &Ctx<'_>) -> Vec<(usize, usize)> {
    let mut by_target: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (i, op) in work.active() {
        by_target.entry(op.target()).or_default().push(i);
    }
    let mut out = Vec::new();
    let push_both = |a: usize, b: usize, out: &mut Vec<(usize, usize)>| {
        out.push((a, b));
        out.push((b, a));
    };
    // Same-target pairs are candidates in every stage that has same-target rules.
    if matches!(stage, 1..=4) {
        for slots in by_target.values() {
            for (x, &a) in slots.iter().enumerate() {
                for &b in &slots[x + 1..] {
                    push_both(a, b, &mut out);
                }
            }
        }
    }
    // Ancestor/descendant pairs (rules O3/O4, stage 1): a single sweep over the
    // targets in document order (start-key order) pairs every operation with
    // the repN/del/repC operations whose containment interval is still open,
    // i.e. exactly the candidate ancestors — O(k log k) overall.
    if stage == 1 {
        let mut labeled: Vec<(usize, &NodeLabel)> =
            work.active().filter_map(|(i, op)| ctx.label(op.target()).map(|l| (i, l))).collect();
        labeled.sort_by(|(_, a), (_, b)| a.start.cmp(&b.start));
        let mut active_overriders: Vec<(usize, &NodeLabel)> = Vec::new();
        for &(i, label) in &labeled {
            active_overriders.retain(|(_, l)| l.end > label.start);
            for &(j, _) in &active_overriders {
                if i != j {
                    out.push((i, j));
                }
            }
            let op = work.slots[i].as_ref().expect("active");
            if matches!(op.name(), OpName::ReplaceNode | OpName::Delete | OpName::ReplaceContent) {
                active_overriders.push((i, label));
            }
        }
    }
    // Parent/child, attribute/owner, first/last-child and sibling pairs: use
    // the parent / left-sibling identifiers recorded in the labels.
    if matches!(stage, 5..=9) {
        for (i, op) in work.active() {
            let t = op.target();
            if let Some(label) = ctx.label(t) {
                if let Some(parent) = label.parent {
                    if let Some(others) = by_target.get(&parent) {
                        for &j in others {
                            if i != j {
                                push_both(i, j, &mut out);
                            }
                        }
                    }
                }
                if let Some(left) = label.left_sibling {
                    if let Some(others) = by_target.get(&left) {
                        for &j in others {
                            if i != j {
                                push_both(i, j, &mut out);
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// `<o` of Def. 9: document order of targets, then lexicographic order of the
/// serialized parameters.
fn op_order(ctx: &Ctx<'_>, a: &UpdateOp, b: &UpdateOp) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    if a.target() != b.target() {
        return if ctx.precedes(a.target(), b.target()) {
            Ordering::Less
        } else {
            Ordering::Greater
        };
    }
    a.param_sort_key().cmp(&b.param_sort_key()).then_with(|| a.name().code().cmp(b.name().code()))
}

fn pair_order(
    ctx: &Ctx<'_>,
    (a1, a2): (&UpdateOp, &UpdateOp),
    (b1, b2): (&UpdateOp, &UpdateOp),
) -> std::cmp::Ordering {
    op_order(ctx, a1, b1).then_with(|| op_order(ctx, a2, b2))
}

fn run_stage(stage: u8, work: &mut Work, ctx: &Ctx<'_>, canonical: bool) {
    loop {
        let pairs = candidates(stage, work, ctx);
        if canonical {
            // Find the applicable pair that is least under <p (Def. 9).
            let mut best: Option<(usize, usize, UpdateOp)> = None;
            for (i, j) in pairs {
                let (Some(op1), Some(op2)) = (&work.slots[i], &work.slots[j]) else { continue };
                if let Some(result) = try_rule(stage, op1, op2, ctx) {
                    let better = match &best {
                        None => true,
                        Some((bi, bj, _)) => {
                            let b1 = work.slots[*bi].as_ref().expect("active");
                            let b2 = work.slots[*bj].as_ref().expect("active");
                            pair_order(ctx, (op1, op2), (b1, b2)) == std::cmp::Ordering::Less
                        }
                    };
                    if better {
                        best = Some((i, j, result));
                    }
                }
            }
            match best {
                Some((i, j, result)) => work.apply(i, j, result),
                None => break,
            }
        } else {
            let mut applied = false;
            for (i, j) in pairs {
                let (Some(op1), Some(op2)) = (&work.slots[i], &work.slots[j]) else { continue };
                if let Some(result) = try_rule(stage, op1, op2, ctx) {
                    work.apply(i, j, result);
                    applied = true;
                }
            }
            if !applied {
                break;
            }
        }
    }
}

/// Reduces a PUL with the requested [`ReductionKind`].
pub fn reduce_with(pul: &Pul, kind: ReductionKind) -> Pul {
    let ctx = Ctx { labels: pul.labels() };
    let mut work = Work { slots: pul.ops().iter().cloned().map(Some).collect() };
    for stage in 1..=9 {
        run_stage(stage, &mut work, &ctx, kind == ReductionKind::Canonical);
    }
    // Stage 10: make the semantics deterministic by rewriting ins↓ into ins↙.
    if matches!(kind, ReductionKind::Deterministic | ReductionKind::Canonical) {
        for op in work.slots.iter_mut().flatten() {
            if op.name() == OpName::InsInto {
                let content = op.content().unwrap_or(&[]).to_vec();
                *op = UpdateOp::ins_first(op.target(), content);
            }
        }
    }
    let mut ops: Vec<UpdateOp> = work.slots.into_iter().flatten().collect();
    if kind == ReductionKind::Canonical {
        // Present the canonical form in a fixed order (<o) — the PUL is an
        // unordered list, so this only normalizes the presentation.
        ops.sort_by(|a, b| op_order(&ctx, a, b).then_with(|| a.name().code().cmp(b.name().code())));
        ops.dedup_by(|a, b| {
            a.target() == b.target()
                && a.name() == b.name()
                && a.param_sort_key() == b.param_sort_key()
        });
    }
    let mut out = Pul::with_capacity(ops.len());
    for op in ops {
        out.push(op);
    }
    for label in pul.labels().values() {
        out.add_label(label.clone());
    }
    out
}

/// PUL reduction `∆O` (Def. 7): stages 1–9.
#[deprecated(
    since = "0.1.0",
    note = "superseded by the session API: use `xmlpul::ReductionStrategy::Standard` (or `reduce_with(pul, ReductionKind::Plain)`)"
)]
pub fn reduce(pul: &Pul) -> Pul {
    reduce_with(pul, ReductionKind::Plain)
}

/// Deterministic PUL reduction `∆H` (Def. 8): stages 1–10.
#[deprecated(
    since = "0.1.0",
    note = "superseded by the session API: use `xmlpul::ReductionStrategy::Deterministic` (or `reduce_with(pul, ReductionKind::Deterministic)`)"
)]
pub fn deterministic_reduce(pul: &Pul) -> Pul {
    reduce_with(pul, ReductionKind::Deterministic)
}

/// Canonical form `∆H̄` (Def. 9): the unique deterministic reduction obtained
/// by always applying a rule to the `<p`-least applicable pair.
#[deprecated(
    since = "0.1.0",
    note = "superseded by the session API: use `xmlpul::ReductionStrategy::Canonical` (or `reduce_with(pul, ReductionKind::Canonical)`)"
)]
pub fn canonical_form(pul: &Pul) -> Pul {
    reduce_with(pul, ReductionKind::Canonical)
}

/// Naive O(k²) reduction that examines *every* ordered pair at each step, used
/// as a baseline in the ablation benchmark for Fig. 6.b. Produces a PUL with
/// the same semantics as [`reduce`].
pub fn reduce_naive(pul: &Pul) -> Pul {
    let ctx = Ctx { labels: pul.labels() };
    let mut work = Work { slots: pul.ops().iter().cloned().map(Some).collect() };
    for stage in 1..=9 {
        loop {
            let active: Vec<usize> = work.active().map(|(i, _)| i).collect();
            let mut applied = false;
            'outer: for &i in &active {
                for &j in &active {
                    if i == j {
                        continue;
                    }
                    let (Some(op1), Some(op2)) = (&work.slots[i], &work.slots[j]) else { continue };
                    if let Some(result) = try_rule(stage, op1, op2, &ctx) {
                        work.apply(i, j, result);
                        applied = true;
                        break 'outer;
                    }
                }
            }
            if !applied {
                break;
            }
        }
    }
    let mut out = Pul::new();
    for op in work.slots.into_iter().flatten() {
        out.push(op);
    }
    for label in pul.labels().values() {
        out.add_label(label.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pul::obtainable::{obtainable_documents, substitutable, DEFAULT_OUTCOME_LIMIT};

    // Local, non-deprecated shorthands: the unit tests exercise the reduction
    // kinds, not the deprecated wrapper functions.
    fn reduce(pul: &Pul) -> Pul {
        reduce_with(pul, ReductionKind::Plain)
    }

    fn deterministic_reduce(pul: &Pul) -> Pul {
        reduce_with(pul, ReductionKind::Deterministic)
    }

    fn canonical_form(pul: &Pul) -> Pul {
        reduce_with(pul, ReductionKind::Canonical)
    }
    use xdm::parser::parse_document;
    use xdm::Document;
    use xlabel::Labeling;

    /// A document shaped like the Figure 1 fragment, with known identifiers:
    /// issue=1 … paper(4) title(5) text(6) author(7) text(8) initPage(9=attr)
    /// paper(10) title(11) text(12) authors(13) author(14) text(15) author(16) text(17)
    fn figure1() -> (Document, Labeling) {
        let doc = parse_document(
            "<issue><volume>30</volume><paper initPage=\"12\"><title>Old title</title>\
             <author>A.Chaudhri</author></paper><paper><title>Report</title><authors>\
             <author>One</author><author>Two</author></authors></paper></issue>",
        )
        .unwrap();
        let labeling = Labeling::assign(&doc);
        (doc, labeling)
    }

    fn pul_of(doc_labels: &Labeling, ops: Vec<UpdateOp>) -> Pul {
        Pul::from_ops(ops, doc_labels)
    }

    fn assert_reduction_substitutable(doc: &Document, pul: &Pul, reduced: &Pul) {
        assert!(
            substitutable(doc, reduced, pul, DEFAULT_OUTCOME_LIMIT).unwrap(),
            "reduced PUL must be substitutable to the original\noriginal: {pul}\nreduced: {reduced}"
        );
    }

    #[test]
    fn rule_o1_same_target_override() {
        let (doc, labels) = figure1();
        let title = doc.find_elements("title")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::rename(title, "heading"),
                UpdateOp::replace_node(title, vec![Tree::element_with_text("author", "M M")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::ReplaceNode);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rule_o1_delete_overrides_everything_local() {
        let (doc, labels) = figure1();
        let paper = doc.find_elements("paper")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::rename(paper, "article"),
                UpdateOp::ins_last(paper, vec![Tree::element("x")]),
                UpdateOp::ins_attributes(paper, vec![Tree::attribute("k", "v")]),
                UpdateOp::delete(paper),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::Delete);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rule_o1_keeps_sibling_insertions() {
        // ins← / ins→ survive a deletion of the same target (they insert
        // siblings, which are not removed by the deletion).
        let (doc, labels) = figure1();
        let title = doc.find_elements("title")[0];
        let pul = pul_of(
            &labels,
            vec![UpdateOp::ins_before(title, vec![Tree::element("kept")]), UpdateOp::delete(title)],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 2, "sibling insertion must not be dropped: {red}");
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rule_o2_repc_overrides_children_insertions() {
        let (doc, labels) = figure1();
        let paper = doc.find_elements("paper")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_last(paper, vec![Tree::element("x")]),
                UpdateOp::ins_into(paper, vec![Tree::element("y")]),
                UpdateOp::replace_content(paper, Some("done".into())),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::ReplaceContent);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rule_o3_ancestor_override() {
        let (doc, labels) = figure1();
        let paper = doc.find_elements("paper")[0];
        let title = doc.find_elements("title")[0];
        let title_text = doc.children(title).unwrap()[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_value(title_text, "New"),
                UpdateOp::rename(title, "heading"),
                UpdateOp::delete(paper),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::Delete);
        assert_eq!(red.ops()[0].target(), paper);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rule_o4_repc_ancestor_override_spares_attributes() {
        let (doc, labels) = figure1();
        let paper = doc.find_elements("paper")[0];
        let init_page = doc.attribute_by_name(paper, "initPage").unwrap().unwrap();
        let title = doc.find_elements("title")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::rename(title, "heading"),
                UpdateOp::replace_value(init_page, "99"),
                UpdateOp::replace_content(paper, None),
            ],
        );
        let red = reduce(&pul);
        // the rename of the (removed) title is dropped, the attribute update survives
        assert_eq!(red.len(), 2, "{red}");
        assert!(red
            .ops()
            .iter()
            .any(|o| o.name() == OpName::ReplaceValue && o.target() == init_page));
        assert!(red.ops().iter().any(|o| o.name() == OpName::ReplaceContent));
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rule_i5_collapses_same_type_insertions() {
        let (doc, labels) = figure1();
        let author = doc.find_elements("author")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "A C")]),
                UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "G G")]),
                UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "F C")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].content().unwrap().len(), 3);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rules_i6_i7_fold_ins_into() {
        let (doc, labels) = figure1();
        let authors = doc.find_element("authors").unwrap();
        // ins↓ + ins↙ → ins↙ with [L2, L1]
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_into(authors, vec![Tree::element_with_text("author", "Into")]),
                UpdateOp::ins_first(authors, vec![Tree::element_with_text("author", "First")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::InsFirst);
        let texts: Vec<String> =
            red.ops()[0].content().unwrap().iter().map(|t| t.text_content(t.root_id())).collect();
        assert_eq!(texts, vec!["First", "Into"]);
        assert_reduction_substitutable(&doc, &pul, &red);

        // ins↓ + ins↘ → ins↘ with [L1, L2]
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_into(authors, vec![Tree::element_with_text("author", "Into")]),
                UpdateOp::ins_last(authors, vec![Tree::element_with_text("author", "Last")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::InsLast);
        let texts: Vec<String> =
            red.ops()[0].content().unwrap().iter().map(|t| t.text_content(t.root_id())).collect();
        assert_eq!(texts, vec!["Into", "Last"]);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rules_ir8_ir9_fold_sibling_insertions_into_repn() {
        let (doc, labels) = figure1();
        let title = doc.find_elements("title")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_node(title, vec![Tree::element_with_text("t", "R")]),
                UpdateOp::ins_before(title, vec![Tree::element_with_text("b", "B")]),
                UpdateOp::ins_after(title, vec![Tree::element_with_text("a", "A")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1, "{red}");
        let op = &red.ops()[0];
        assert_eq!(op.name(), OpName::ReplaceNode);
        let names: Vec<String> =
            op.content().unwrap().iter().map(|t| t.root_name().unwrap()).collect();
        assert_eq!(names, vec!["b", "t", "a"]);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rules_i10_i11_fold_ins_into_with_child_sibling_insertions() {
        let (doc, labels) = figure1();
        let authors = doc.find_element("authors").unwrap();
        let first_author = doc.children(authors).unwrap()[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_into(authors, vec![Tree::element_with_text("author", "Into")]),
                UpdateOp::ins_before(
                    first_author,
                    vec![Tree::element_with_text("author", "Before")],
                ),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::InsBefore);
        assert_eq!(red.ops()[0].target(), first_author);
        assert_reduction_substitutable(&doc, &pul, &red);

        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_into(authors, vec![Tree::element_with_text("author", "Into")]),
                UpdateOp::ins_after(first_author, vec![Tree::element_with_text("author", "After")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::InsAfter);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rules_ir12_ir13_fold_parent_insertions_into_repn() {
        let (doc, labels) = figure1();
        let authors = doc.find_element("authors").unwrap();
        let first_author = doc.children(authors).unwrap()[0];
        // repN(child) + ins↓(parent)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_node(first_author, vec![Tree::element_with_text("author", "R")]),
                UpdateOp::ins_into(authors, vec![Tree::element_with_text("author", "I")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::ReplaceNode);
        assert_eq!(red.ops()[0].content().unwrap().len(), 2);
        assert_reduction_substitutable(&doc, &pul, &red);

        // repN(attribute) + insA(owner)
        let paper = doc.find_elements("paper")[0];
        let init_page = doc.attribute_by_name(paper, "initPage").unwrap().unwrap();
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_node(init_page, vec![Tree::attribute("initPage", "1")]),
                UpdateOp::ins_attributes(paper, vec![Tree::attribute("lastPage", "9")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1, "{red}");
        assert_eq!(red.ops()[0].name(), OpName::ReplaceNode);
        assert_eq!(red.ops()[0].content().unwrap().len(), 2);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rules_i14_to_ir17_first_last_child() {
        let (doc, labels) = figure1();
        let authors = doc.find_element("authors").unwrap();
        let first = doc.children(authors).unwrap()[0];
        let last = *doc.children(authors).unwrap().last().unwrap();

        // I14: ins←(first child) + ins↙(parent)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_before(first, vec![Tree::element_with_text("author", "B")]),
                UpdateOp::ins_first(authors, vec![Tree::element_with_text("author", "F")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::InsBefore);
        assert_reduction_substitutable(&doc, &pul, &red);

        // I15: ins→(last child) + ins↘(parent)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_after(last, vec![Tree::element_with_text("author", "A")]),
                UpdateOp::ins_last(authors, vec![Tree::element_with_text("author", "L")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::InsAfter);
        assert_reduction_substitutable(&doc, &pul, &red);

        // IR16: repN(first child) + ins↙(parent)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_node(first, vec![Tree::element_with_text("author", "R")]),
                UpdateOp::ins_first(authors, vec![Tree::element_with_text("author", "F")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::ReplaceNode);
        assert_reduction_substitutable(&doc, &pul, &red);

        // IR17: repN(last child) + ins↘(parent)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_node(last, vec![Tree::element_with_text("author", "R")]),
                UpdateOp::ins_last(authors, vec![Tree::element_with_text("author", "L")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::ReplaceNode);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rules_i18_to_ir20_siblings() {
        let (doc, labels) = figure1();
        let authors = doc.find_element("authors").unwrap();
        let kids = doc.children(authors).unwrap().to_vec();
        let (left, right) = (kids[0], kids[1]);

        // I18: ins←(right) + ins→(left sibling)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_before(right, vec![Tree::element_with_text("author", "B")]),
                UpdateOp::ins_after(left, vec![Tree::element_with_text("author", "A")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::InsBefore);
        assert_reduction_substitutable(&doc, &pul, &red);

        // IR19: repN(right) + ins→(left sibling)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_node(right, vec![Tree::element_with_text("author", "R")]),
                UpdateOp::ins_after(left, vec![Tree::element_with_text("author", "A")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::ReplaceNode);
        assert_reduction_substitutable(&doc, &pul, &red);

        // IR20: repN(left) + ins←(right sibling)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_node(left, vec![Tree::element_with_text("author", "R")]),
                UpdateOp::ins_before(right, vec![Tree::element_with_text("author", "B")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::ReplaceNode);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn deterministic_reduction_removes_nondeterminism() {
        let (doc, labels) = figure1();
        let authors = doc.find_element("authors").unwrap();
        let pul = pul_of(
            &labels,
            vec![UpdateOp::ins_into(authors, vec![Tree::element_with_text("author", "X")])],
        );
        let plain = reduce(&pul);
        assert_eq!(plain.ops()[0].name(), OpName::InsInto, "plain reduction keeps ins↓");
        let det = deterministic_reduce(&pul);
        assert_eq!(det.ops()[0].name(), OpName::InsFirst, "stage 10 rewrites ins↓ into ins↙");
        let o = obtainable_documents(&doc, &det, DEFAULT_OUTCOME_LIMIT).unwrap();
        assert_eq!(o.len(), 1, "deterministic reduction has a single outcome (Prop. 1)");
        assert_reduction_substitutable(&doc, &pul, &det);
    }

    #[test]
    fn canonical_form_is_unique_and_idempotent() {
        let (doc, labels) = figure1();
        let author = doc.find_elements("author")[0];
        // the same logical PUL written with operations in two different orders
        let ops_a = vec![
            UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "G G")]),
            UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "A C")]),
            UpdateOp::rename(author, "writer"),
        ];
        let ops_b = vec![
            UpdateOp::rename(author, "writer"),
            UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "A C")]),
            UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "G G")]),
        ];
        let c1 = canonical_form(&pul_of(&labels, ops_a));
        let c2 = canonical_form(&pul_of(&labels, ops_b));
        assert_eq!(c1.to_string(), c2.to_string(), "canonical form is unique (Prop. 1)");
        // idempotence: (∆r)r = ∆r
        let c3 = canonical_form(&c1);
        assert_eq!(c1.to_string(), c3.to_string());
        // the insertion parameters are ordered lexicographically (A C before G G)
        let ins = c1.ops().iter().find(|o| o.name() == OpName::InsAfter).unwrap();
        let texts: Vec<String> =
            ins.content().unwrap().iter().map(|t| t.text_content(t.root_id())).collect();
        assert_eq!(texts, vec!["A C", "G G"]);
        assert_reduction_substitutable(&doc, &pul_of(&labels, vec![]), &Pul::new());
    }

    #[test]
    fn reduction_is_idempotent() {
        let (doc, labels) = figure1();
        let paper = doc.find_elements("paper")[0];
        let title = doc.find_elements("title")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::rename(title, "t"),
                UpdateOp::delete(paper),
                UpdateOp::ins_after(paper, vec![Tree::element("x")]),
                UpdateOp::ins_after(paper, vec![Tree::element("y")]),
            ],
        );
        for kind in [ReductionKind::Plain, ReductionKind::Deterministic, ReductionKind::Canonical] {
            let once = reduce_with(&pul, kind);
            let twice = reduce_with(&once, kind);
            assert_eq!(once.to_string(), twice.to_string(), "(∆r)r = ∆r for {kind:?}");
        }
    }

    #[test]
    fn naive_and_fast_reduction_agree_on_size() {
        let (doc, labels) = figure1();
        let paper = doc.find_elements("paper")[0];
        let title = doc.find_elements("title")[0];
        let author = doc.find_elements("author")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::rename(title, "t"),
                UpdateOp::replace_node(title, vec![Tree::element_with_text("t", "x")]),
                UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "1")]),
                UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "2")]),
                UpdateOp::ins_attributes(paper, vec![Tree::attribute("k", "v")]),
            ],
        );
        let fast = reduce(&pul);
        let naive = reduce_naive(&pul);
        assert_eq!(fast.len(), naive.len());
        let d1 = doc.clone();
        assert_reduction_substitutable(&d1, &pul, &fast);
        assert_reduction_substitutable(&d1, &pul, &naive);
    }

    #[test]
    fn ops_without_labels_are_left_untouched() {
        // operations targeting unlabeled nodes cannot be proven related: the
        // reduction must keep them (sound, if not minimal).
        let mut pul = Pul::new();
        pul.push(UpdateOp::rename(100u64, "x"));
        pul.push(UpdateOp::delete(200u64));
        let red = reduce(&pul);
        assert_eq!(red.len(), 2);
    }
}
