//! PUL reduction (§3.1): Fig. 2 rules, Defs. 7–9, Prop. 1.
//!
//! Reduction transforms a PUL into a more compact PUL with the *same or more
//! specific* effect (it is substitutable to the original, Prop. 1) by
//!
//! * removing operations whose effects are overridden by a `repN`, `del` or
//!   `repC` on the same node or on an ancestor (rules `O1`–`O4`);
//! * collapsing insertion operations targeted at the same node, at sibling
//!   nodes or at parent/child nodes (rules `I5`–`I18`);
//! * collapsing insertions into replacement operations (`IR8`–`IR20`).
//!
//! Rules are organised in nine stages and applied stage by stage. The
//! **deterministic reduction** (Def. 8) adds a tenth stage that rewrites the
//! remaining `ins↓` operations into `ins↙`, making the PUL semantics
//! deterministic. The **canonical form** (Def. 9) additionally constrains the
//! order of rule applications (always the `<p`-least applicable pair), which
//! makes the result unique for a given PUL.
//!
//! Structural side conditions (`/c`, `/a`, `/←c`, `/→c`, `≺s`, `//d`, `//¬a_d`)
//! are evaluated on the labels carried by the PUL; pairs whose labels are
//! missing simply never match, which keeps reduction sound (fewer rules fire).

use std::borrow::Cow;
use std::collections::HashMap;

use pul::{OpClass, OpName, Pul, UpdateOp};
use xdm::{NodeId, Tree};
use xlabel::NodeLabel;

/// Which reduction is requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionKind {
    /// Stages 1–9 (Def. 7): the result may still contain `ins↓`.
    Plain,
    /// Stages 1–10 (Def. 8): `ins↓` is rewritten into `ins↙`.
    Deterministic,
    /// Stages 1–10 with `<p`-least pair selection (Def. 9): unique result.
    Canonical,
}

/// Multiplicative hasher for `NodeId` keys: identifiers are (near-)sequential
/// integers, so the default SipHash is pure overhead on the reduction hot
/// path.
#[derive(Default)]
struct NodeIdHasher(u64);

impl std::hash::Hasher for NodeIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut h = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
        self.0 = h;
    }
}

type NodeIdMap<V> = HashMap<NodeId, V, std::hash::BuildHasherDefault<NodeIdHasher>>;

/// Label-based evaluation of the Table 1 predicates between operation targets.
struct Ctx<'a> {
    labels: &'a HashMap<NodeId, NodeLabel>,
}

impl<'a> Ctx<'a> {
    fn label(&self, id: NodeId) -> Option<&'a NodeLabel> {
        self.labels.get(&id)
    }

    /// Document order of two targets (`≺`), falling back to identifier order
    /// when labels are missing (only used for canonical tie-breaking).
    fn precedes(&self, a: NodeId, b: NodeId) -> bool {
        match (self.label(a), self.label(b)) {
            (Some(x), Some(y)) => x.precedes(y),
            _ => a < b,
        }
    }
}

// Table 1 predicates over the (optional) labels of the two operation targets:
// a pair with a missing label never matches, which keeps reduction sound
// (fewer rules fire).

fn lpair<'a>(
    a: Option<&'a NodeLabel>,
    b: Option<&'a NodeLabel>,
) -> Option<(&'a NodeLabel, &'a NodeLabel)> {
    Some((a?, b?))
}

fn l_is_child(a: Option<&NodeLabel>, b: Option<&NodeLabel>) -> bool {
    lpair(a, b).map(|(x, y)| x.is_child_of(y)).unwrap_or(false)
}

fn l_is_attribute(a: Option<&NodeLabel>, b: Option<&NodeLabel>) -> bool {
    lpair(a, b).map(|(x, y)| x.is_attribute_of(y)).unwrap_or(false)
}

fn l_is_first_child(a: Option<&NodeLabel>, b: Option<&NodeLabel>) -> bool {
    lpair(a, b).map(|(x, y)| x.is_first_child_of(y)).unwrap_or(false)
}

fn l_is_last_child(a: Option<&NodeLabel>, b: Option<&NodeLabel>) -> bool {
    lpair(a, b).map(|(x, y)| x.is_last_child_of(y)).unwrap_or(false)
}

fn l_is_left_sibling(a: Option<&NodeLabel>, b: Option<&NodeLabel>) -> bool {
    lpair(a, b).map(|(x, y)| x.is_left_sibling_of(y)).unwrap_or(false)
}

fn l_is_descendant(a: Option<&NodeLabel>, b: Option<&NodeLabel>) -> bool {
    lpair(a, b).map(|(x, y)| x.is_descendant_of(y)).unwrap_or(false)
}

fn l_is_descendant_not_attr(a: Option<&NodeLabel>, b: Option<&NodeLabel>) -> bool {
    lpair(a, b).map(|(x, y)| x.is_descendant_not_attr_of(y)).unwrap_or(false)
}

fn concat_content(first: &UpdateOp, second: &UpdateOp) -> Vec<Tree> {
    let mut out: Vec<Tree> = first.content().unwrap_or(&[]).to_vec();
    out.extend(second.content().unwrap_or(&[]).iter().cloned());
    out
}

fn rebuild(name: OpName, target: NodeId, content: Vec<Tree>) -> UpdateOp {
    match name {
        OpName::InsBefore => UpdateOp::ins_before(target, content),
        OpName::InsAfter => UpdateOp::ins_after(target, content),
        OpName::InsFirst => UpdateOp::ins_first(target, content),
        OpName::InsLast => UpdateOp::ins_last(target, content),
        OpName::InsInto => UpdateOp::ins_into(target, content),
        OpName::InsAttributes => UpdateOp::ins_attributes(target, content),
        OpName::ReplaceNode => UpdateOp::replace_node(target, content),
        other => unreachable!("rebuild called with non-tree operation {other:?}"),
    }
}

/// Tries to apply a Fig. 2 rule of the given stage to the ordered pair
/// `(op1, op2)`. Returns the reduced operation when a rule matches.
fn try_rule(
    stage: u8,
    op1: &UpdateOp,
    op2: &UpdateOp,
    l1: Option<&NodeLabel>,
    l2: Option<&NodeLabel>,
) -> Option<UpdateOp> {
    use OpName::*;
    let (t1, t2) = (op1.target(), op2.target());
    let (n1, n2) = (op1.name(), op2.name());
    match stage {
        1 => {
            // O1: any op (except repN and sibling insertions) on v is overridden
            // by a repN/del on the same v.
            if t1 == t2
                && matches!(n2, ReplaceNode | Delete)
                && matches!(
                    n1,
                    Rename
                        | ReplaceValue
                        | ReplaceContent
                        | Delete
                        | InsFirst
                        | InsLast
                        | InsInto
                        | InsAttributes
                )
            {
                return Some(op2.clone());
            }
            // O2: children insertions on v are overridden by a repC on v.
            if t1 == t2 && n2 == ReplaceContent && matches!(n1, InsFirst | InsInto | InsLast) {
                return Some(op2.clone());
            }
            // O3: any op on a descendant of a repN/del target is overridden.
            if matches!(n2, ReplaceNode | Delete) && l_is_descendant(l1, l2) {
                return Some(op2.clone());
            }
            // O4: any op on a (non-attribute) descendant of a repC target is overridden.
            if n2 == ReplaceContent && l_is_descendant_not_attr(l1, l2) {
                return Some(op2.clone());
            }
            // I5: same-type insertions on the same target are concatenated.
            if t1 == t2 && n1 == n2 && op1.class() == OpClass::Insertion {
                return Some(rebuild(n1, t1, concat_content(op1, op2)));
            }
            None
        }
        2 => {
            // I6: ins↓(v, L1), ins↙(v, L2) → ins↙(v, [L2, L1])
            if t1 == t2 && n1 == InsInto && n2 == InsFirst {
                return Some(rebuild(InsFirst, t1, concat_content(op2, op1)));
            }
            None
        }
        3 => {
            // I7: ins↓(v, L1), ins↘(v, L2) → ins↘(v, [L1, L2])
            if t1 == t2 && n1 == InsInto && n2 == InsLast {
                return Some(rebuild(InsLast, t1, concat_content(op1, op2)));
            }
            None
        }
        4 => {
            // IR8: repN(v, L1), ins←(v, L2) → repN(v, [L2, L1])
            if t1 == t2 && n1 == ReplaceNode && n2 == InsBefore {
                return Some(rebuild(ReplaceNode, t1, concat_content(op2, op1)));
            }
            // IR9: repN(v, L1), ins→(v, L2) → repN(v, [L1, L2])
            if t1 == t2 && n1 == ReplaceNode && n2 == InsAfter {
                return Some(rebuild(ReplaceNode, t1, concat_content(op1, op2)));
            }
            None
        }
        5 => {
            // I10: ins↓(v, L1), ins←(v', L2), v' /c v → ins←(v', [L1, L2])
            if n1 == InsInto && n2 == InsBefore && l_is_child(l2, l1) {
                return Some(rebuild(InsBefore, t2, concat_content(op1, op2)));
            }
            None
        }
        6 => {
            // I11: ins↓(v, L1), ins→(v', L2), v' /c v → ins→(v', [L2, L1])
            if n1 == InsInto && n2 == InsAfter && l_is_child(l2, l1) {
                return Some(rebuild(InsAfter, t2, concat_content(op2, op1)));
            }
            None
        }
        7 => {
            // IR12: repN(v, L1), ins↓(v', L2), v /c v' → repN(v, [L1, L2])
            if n1 == ReplaceNode && n2 == InsInto && l_is_child(l1, l2) {
                return Some(rebuild(ReplaceNode, t1, concat_content(op1, op2)));
            }
            None
        }
        8 => {
            // IR13: repN(v, L1), insA(v', L2), v /a v' → repN(v, [L1, L2])
            if n1 == ReplaceNode && n2 == InsAttributes && l_is_attribute(l1, l2) {
                return Some(rebuild(ReplaceNode, t1, concat_content(op1, op2)));
            }
            // I14: ins←(v, L1), ins↙(v', L2), v /←c v' → ins←(v, [L2, L1])
            if n1 == InsBefore && n2 == InsFirst && l_is_first_child(l1, l2) {
                return Some(rebuild(InsBefore, t1, concat_content(op2, op1)));
            }
            // I15: ins→(v, L1), ins↘(v', L2), v /→c v' → ins→(v, [L1, L2])
            if n1 == InsAfter && n2 == InsLast && l_is_last_child(l1, l2) {
                return Some(rebuild(InsAfter, t1, concat_content(op1, op2)));
            }
            // IR16: repN(v, L1), ins↙(v', L2), v /←c v' → repN(v, [L2, L1])
            if n1 == ReplaceNode && n2 == InsFirst && l_is_first_child(l1, l2) {
                return Some(rebuild(ReplaceNode, t1, concat_content(op2, op1)));
            }
            // IR17: repN(v, L1), ins↘(v', L2), v /→c v' → repN(v, [L1, L2])
            if n1 == ReplaceNode && n2 == InsLast && l_is_last_child(l1, l2) {
                return Some(rebuild(ReplaceNode, t1, concat_content(op1, op2)));
            }
            None
        }
        9 => {
            // I18: ins←(v, L1), ins→(v', L2), v' ≺s v → ins←(v, [L2, L1])
            if n1 == InsBefore && n2 == InsAfter && l_is_left_sibling(l2, l1) {
                return Some(rebuild(InsBefore, t1, concat_content(op2, op1)));
            }
            // IR19: repN(v, L1), ins→(v', L2), v' ≺s v → repN(v, [L2, L1])
            if n1 == ReplaceNode && n2 == InsAfter && l_is_left_sibling(l2, l1) {
                return Some(rebuild(ReplaceNode, t1, concat_content(op2, op1)));
            }
            // IR20: repN(v, L1), ins←(v', L2), v ≺s v' → repN(v, [L1, L2])
            if n1 == ReplaceNode && n2 == InsBefore && l_is_left_sibling(l1, l2) {
                return Some(rebuild(ReplaceNode, t1, concat_content(op1, op2)));
            }
            None
        }
        _ => None,
    }
}

/// Slot-based working set of operations.
///
/// A slot's target never changes over the lifetime of a reduction: every
/// Fig. 2 rule produces an operation targeting one of the two input targets,
/// and [`Work::apply`] places the result in the slot already holding that
/// target. The per-target and per-relationship indexes of the worklist engine
/// can therefore be built once and never rebuilt.
struct Work<'a> {
    /// Operations start as borrows of the input PUL (cloning an operation
    /// deep-copies its parameter trees, so it is deferred until a rule
    /// actually rewrites the operation or the survivor is materialised).
    slots: Vec<Option<Cow<'a, UpdateOp>>>,
}

impl<'a> Work<'a> {
    fn of(pul: &'a Pul) -> Self {
        Work { slots: pul.ops().iter().map(|op| Some(Cow::Borrowed(op))).collect() }
    }

    fn active(&self) -> impl Iterator<Item = (usize, &UpdateOp)> {
        self.slots.iter().enumerate().filter_map(|(i, o)| o.as_deref().map(|op| (i, op)))
    }

    /// Applies the result of a rule on slots `(i, j)`: the result replaces the
    /// slot whose operation target matches the result target, the other slot is
    /// cleared. Returns the index of the surviving slot.
    fn apply(&mut self, i: usize, j: usize, result: UpdateOp) -> usize {
        let tj = self.slots[j].as_deref().map(|o| o.target());
        if tj == Some(result.target()) {
            self.slots[j] = Some(Cow::Owned(result));
            self.slots[i] = None;
            j
        } else {
            self.slots[i] = Some(Cow::Owned(result));
            self.slots[j] = None;
            i
        }
    }
}

/// Cheap per-stage name compatibility check mirroring the `try_rule` patterns
/// (ignoring the structural side conditions): pairs that cannot possibly match
/// are never enqueued.
fn names_may_match(stage: u8, n1: OpName, n2: OpName) -> bool {
    use OpName::*;
    match stage {
        // O1–O4 are keyed on the overriding op2; I5 on equal insertion names.
        1 => {
            matches!(n2, ReplaceNode | Delete | ReplaceContent)
                || (n1 == n2
                    && matches!(
                        n1,
                        InsBefore | InsAfter | InsFirst | InsLast | InsInto | InsAttributes
                    ))
        }
        2 => n1 == InsInto && n2 == InsFirst,
        3 => n1 == InsInto && n2 == InsLast,
        4 => n1 == ReplaceNode && matches!(n2, InsBefore | InsAfter),
        5 => n1 == InsInto && n2 == InsBefore,
        6 => n1 == InsInto && n2 == InsAfter,
        7 => n1 == ReplaceNode && n2 == InsInto,
        8 => {
            (n1 == ReplaceNode && matches!(n2, InsAttributes | InsFirst | InsLast))
                || (n1 == InsBefore && n2 == InsFirst)
                || (n1 == InsAfter && n2 == InsLast)
        }
        9 => {
            (n1 == InsBefore && n2 == InsAfter)
                || (n1 == ReplaceNode && matches!(n2, InsAfter | InsBefore))
        }
        _ => false,
    }
}

/// Static relationship indexes over the slots, built once per reduction.
/// Entries are never removed: inactive slots are filtered out lazily when a
/// pair is popped (slot targets are immutable, see [`Work`]).
struct PairIndex {
    /// Slots by operation target.
    by_target: NodeIdMap<Vec<usize>>,
    /// Slots by the *parent* recorded in their target's label.
    rev_parent: NodeIdMap<Vec<usize>>,
    /// Slots by the *left sibling* recorded in their target's label.
    rev_leftsib: NodeIdMap<Vec<usize>>,
    /// Same-target slot groups of size ≥ 2 (candidate pairs of stages 1–4).
    same_target_groups: Vec<Vec<usize>>,
    /// Unordered slot adjacency through the parent / left-sibling relations
    /// recorded in the labels (candidate pairs of stages 5–9).
    rel_pairs: Vec<(usize, usize)>,
}

impl PairIndex {
    fn build(work: &Work<'_>, slot_labels: &[Option<&NodeLabel>]) -> Self {
        let mut by_target: NodeIdMap<Vec<usize>> = NodeIdMap::default();
        let mut rev_parent: NodeIdMap<Vec<usize>> = NodeIdMap::default();
        let mut rev_leftsib: NodeIdMap<Vec<usize>> = NodeIdMap::default();
        for (i, op) in work.active() {
            by_target.entry(op.target()).or_default().push(i);
            if let Some(label) = slot_labels[i] {
                if let Some(p) = label.parent {
                    rev_parent.entry(p).or_default().push(i);
                }
                if let Some(l) = label.left_sibling {
                    rev_leftsib.entry(l).or_default().push(i);
                }
            }
        }
        let same_target_groups: Vec<Vec<usize>> =
            by_target.values().filter(|g| g.len() >= 2).cloned().collect();
        let mut rel_pairs: Vec<(usize, usize)> = Vec::new();
        for (i, _) in work.active() {
            if let Some(label) = slot_labels[i] {
                for rel in [label.parent, label.left_sibling].into_iter().flatten() {
                    if let Some(group) = by_target.get(&rel) {
                        for &j in group {
                            if i != j {
                                rel_pairs.push((i, j));
                            }
                        }
                    }
                }
            }
        }
        PairIndex { by_target, rev_parent, rev_leftsib, same_target_groups, rel_pairs }
    }
}

/// Pushes the ordered pairs `(a, b)` and `(b, a)` that pass the name filter.
fn push_pair_both(stage: u8, work: &Work<'_>, a: usize, b: usize, queue: &mut Vec<(usize, usize)>) {
    let (Some(oa), Some(ob)) = (work.slots[a].as_deref(), work.slots[b].as_deref()) else { return };
    let (na, nb) = (oa.name(), ob.name());
    if names_may_match(stage, na, nb) {
        queue.push((a, b));
    }
    if names_may_match(stage, nb, na) {
        queue.push((b, a));
    }
}

/// Enqueues every pair involving slot `s` that could match a rule of `stage`
/// — called after a rule application, so that only the neighbourhood of the
/// surviving operation is re-examined instead of rebuilding the candidate set.
fn enqueue_for_slot(
    stage: u8,
    s: usize,
    work: &Work<'_>,
    slot_labels: &[Option<&NodeLabel>],
    idx: &PairIndex,
    queue: &mut Vec<(usize, usize)>,
) {
    let Some(op) = &work.slots[s] else { return };
    let t = op.target();
    if matches!(stage, 1..=4) {
        if let Some(group) = idx.by_target.get(&t) {
            for &o in group {
                if o != s {
                    push_pair_both(stage, work, s, o, queue);
                }
            }
        }
    }
    if matches!(stage, 5..=9) {
        // forward: slots targeting this target's parent / left sibling
        if let Some(label) = slot_labels[s] {
            for rel in [label.parent, label.left_sibling].into_iter().flatten() {
                if let Some(group) = idx.by_target.get(&rel) {
                    for &o in group {
                        if o != s {
                            push_pair_both(stage, work, s, o, queue);
                        }
                    }
                }
            }
        }
        // reverse: slots whose target's label points at this target
        for rev in [&idx.rev_parent, &idx.rev_leftsib] {
            if let Some(group) = rev.get(&t) {
                for &o in group {
                    if o != s {
                        push_pair_both(stage, work, s, o, queue);
                    }
                }
            }
        }
    }
}

/// Seeds the worklist of a stage with every candidate pair, using the static
/// indexes (same target, parent/child, attribute/owner, sibling) plus — for
/// stage 1 — a document-order interval sweep pairing every operation with the
/// `repN`/`del`/`repC` operations on its ancestors.
fn seed_stage(
    stage: u8,
    work: &Work<'_>,
    slot_labels: &[Option<&NodeLabel>],
    idx: &PairIndex,
) -> Vec<(usize, usize)> {
    let mut queue = Vec::new();
    if matches!(stage, 1..=4) {
        for group in &idx.same_target_groups {
            for (x, &a) in group.iter().enumerate() {
                if work.slots[a].is_none() {
                    continue;
                }
                for &b in &group[x + 1..] {
                    if work.slots[b].is_some() {
                        push_pair_both(stage, work, a, b, &mut queue);
                    }
                }
            }
        }
    }
    if stage == 1 {
        // Ancestor/descendant pairs (rules O3/O4): a single sweep over the
        // targets in document order (start-key order) pairs every operation
        // with the repN/del/repC operations whose containment interval is
        // still open, i.e. exactly the candidate ancestors — O(k log k).
        let mut labeled: Vec<(usize, &NodeLabel)> =
            work.active().filter_map(|(i, _)| slot_labels[i].map(|l| (i, l))).collect();
        labeled.sort_by(|(_, a), (_, b)| a.start.cmp(&b.start));
        let mut active_overriders: Vec<(usize, &NodeLabel)> = Vec::new();
        for &(i, label) in &labeled {
            active_overriders.retain(|(_, l)| l.end > label.start);
            for &(j, _) in &active_overriders {
                if i != j {
                    queue.push((i, j));
                }
            }
            let op = work.slots[i].as_deref().expect("active");
            if matches!(op.name(), OpName::ReplaceNode | OpName::Delete | OpName::ReplaceContent) {
                active_overriders.push((i, label));
            }
        }
    }
    if matches!(stage, 5..=9) {
        for &(i, j) in &idx.rel_pairs {
            push_pair_both(stage, work, i, j, &mut queue);
        }
    }
    queue
}

/// Whether any rule of `stage` can possibly fire given the names of the
/// active operations — stages whose operation kinds are absent are skipped
/// without building a worklist at all.
fn stage_feasible(stage: u8, counts: &[usize; 11]) -> bool {
    use OpName::*;
    // counts are indexed by a dense op-name ordinal, see `name_ordinal`.
    let c = |n: OpName| counts[name_ordinal(n)] > 0;
    match stage {
        1 => {
            c(ReplaceNode)
                || c(Delete)
                || c(ReplaceContent)
                || [InsBefore, InsAfter, InsFirst, InsLast, InsInto, InsAttributes]
                    .into_iter()
                    .any(|n| counts[name_ordinal(n)] >= 2)
        }
        2 => c(InsInto) && c(InsFirst),
        3 => c(InsInto) && c(InsLast),
        4 => c(ReplaceNode) && (c(InsBefore) || c(InsAfter)),
        5 => c(InsInto) && c(InsBefore),
        6 => c(InsInto) && c(InsAfter),
        7 => c(ReplaceNode) && c(InsInto),
        8 => {
            (c(ReplaceNode) && (c(InsAttributes) || c(InsFirst) || c(InsLast)))
                || (c(InsBefore) && c(InsFirst))
                || (c(InsAfter) && c(InsLast))
        }
        9 => (c(InsBefore) && c(InsAfter)) || (c(ReplaceNode) && (c(InsAfter) || c(InsBefore))),
        _ => false,
    }
}

/// Dense ordinal of an operation name, used for the per-stage feasibility
/// counts.
fn name_ordinal(n: OpName) -> usize {
    use OpName::*;
    match n {
        InsBefore => 0,
        InsAfter => 1,
        InsFirst => 2,
        InsLast => 3,
        InsInto => 4,
        InsAttributes => 5,
        Delete => 6,
        ReplaceNode => 7,
        ReplaceValue => 8,
        ReplaceContent => 9,
        Rename => 10,
    }
}

/// Incremental worklist engine: the candidate pairs of a stage are seeded
/// once from the static indexes; after each rule application only the pairs
/// involving the surviving slot are re-enqueued. Combined with the per-stage
/// feasibility check, a stage whose rules cannot fire costs a single O(k)
/// name count, and the whole reduction scales with the number of rule
/// applications rather than with sweeps over the full candidate set.
fn run_stage_worklist(
    stage: u8,
    work: &mut Work<'_>,
    slot_labels: &[Option<&NodeLabel>],
    idx: &PairIndex,
    counts: &mut [usize; 11],
) {
    let mut queue = seed_stage(stage, work, slot_labels, idx);
    while let Some((i, j)) = queue.pop() {
        let (Some(op1), Some(op2)) = (work.slots[i].as_deref(), work.slots[j].as_deref()) else {
            continue;
        };
        if let Some(result) = try_rule(stage, op1, op2, slot_labels[i], slot_labels[j]) {
            counts[name_ordinal(op1.name())] -= 1;
            counts[name_ordinal(op2.name())] -= 1;
            counts[name_ordinal(result.name())] += 1;
            let survivor = work.apply(i, j, result);
            enqueue_for_slot(stage, survivor, work, slot_labels, idx, &mut queue);
        }
    }
}

/// Candidate ordered pairs for a stage, rebuilt from scratch — the pre-worklist
/// engine, kept verbatim for the canonical reduction (which must re-select the
/// globally `<p`-least applicable pair after every application) and as the
/// measured baseline of the fig-6b ablation (`reduce_sweep_baseline`).
fn candidates(stage: u8, work: &Work<'_>, ctx: &Ctx<'_>) -> Vec<(usize, usize)> {
    let mut by_target: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (i, op) in work.active() {
        by_target.entry(op.target()).or_default().push(i);
    }
    let mut out = Vec::new();
    let push_both = |a: usize, b: usize, out: &mut Vec<(usize, usize)>| {
        out.push((a, b));
        out.push((b, a));
    };
    // Same-target pairs are candidates in every stage that has same-target rules.
    if matches!(stage, 1..=4) {
        for slots in by_target.values() {
            for (x, &a) in slots.iter().enumerate() {
                for &b in &slots[x + 1..] {
                    push_both(a, b, &mut out);
                }
            }
        }
    }
    // Ancestor/descendant pairs (rules O3/O4, stage 1): a single sweep over the
    // targets in document order (start-key order) pairs every operation with
    // the repN/del/repC operations whose containment interval is still open,
    // i.e. exactly the candidate ancestors — O(k log k) overall.
    if stage == 1 {
        let mut labeled: Vec<(usize, &NodeLabel)> =
            work.active().filter_map(|(i, op)| ctx.label(op.target()).map(|l| (i, l))).collect();
        labeled.sort_by(|(_, a), (_, b)| a.start.cmp(&b.start));
        let mut active_overriders: Vec<(usize, &NodeLabel)> = Vec::new();
        for &(i, label) in &labeled {
            active_overriders.retain(|(_, l)| l.end > label.start);
            for &(j, _) in &active_overriders {
                if i != j {
                    out.push((i, j));
                }
            }
            let op = work.slots[i].as_deref().expect("active");
            if matches!(op.name(), OpName::ReplaceNode | OpName::Delete | OpName::ReplaceContent) {
                active_overriders.push((i, label));
            }
        }
    }
    // Parent/child, attribute/owner, first/last-child and sibling pairs: use
    // the parent / left-sibling identifiers recorded in the labels.
    if matches!(stage, 5..=9) {
        for (i, op) in work.active() {
            let t = op.target();
            if let Some(label) = ctx.label(t) {
                if let Some(parent) = label.parent {
                    if let Some(others) = by_target.get(&parent) {
                        for &j in others {
                            if i != j {
                                push_both(i, j, &mut out);
                            }
                        }
                    }
                }
                if let Some(left) = label.left_sibling {
                    if let Some(others) = by_target.get(&left) {
                        for &j in others {
                            if i != j {
                                push_both(i, j, &mut out);
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// `<o` of Def. 9: document order of targets, then lexicographic order of the
/// serialized parameters.
fn op_order(ctx: &Ctx<'_>, a: &UpdateOp, b: &UpdateOp) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    if a.target() != b.target() {
        return if ctx.precedes(a.target(), b.target()) {
            Ordering::Less
        } else {
            Ordering::Greater
        };
    }
    a.param_sort_key().cmp(&b.param_sort_key()).then_with(|| a.name().code().cmp(b.name().code()))
}

fn pair_order(
    ctx: &Ctx<'_>,
    (a1, a2): (&UpdateOp, &UpdateOp),
    (b1, b2): (&UpdateOp, &UpdateOp),
) -> std::cmp::Ordering {
    op_order(ctx, a1, b1).then_with(|| op_order(ctx, a2, b2))
}

/// Sweep engine: rebuilds the candidate pairs after every pass (and, in
/// canonical mode, after every single application).
fn run_stage_sweep(stage: u8, work: &mut Work<'_>, ctx: &Ctx<'_>, canonical: bool) {
    loop {
        let pairs = candidates(stage, work, ctx);
        if canonical {
            // Find the applicable pair that is least under <p (Def. 9).
            let mut best: Option<(usize, usize, UpdateOp)> = None;
            for (i, j) in pairs {
                let (Some(op1), Some(op2)) = (work.slots[i].as_deref(), work.slots[j].as_deref())
                else {
                    continue;
                };
                let (l1, l2) = (ctx.label(op1.target()), ctx.label(op2.target()));
                if let Some(result) = try_rule(stage, op1, op2, l1, l2) {
                    let better = match &best {
                        None => true,
                        Some((bi, bj, _)) => {
                            let b1 = work.slots[*bi].as_deref().expect("active");
                            let b2 = work.slots[*bj].as_deref().expect("active");
                            pair_order(ctx, (op1, op2), (b1, b2)) == std::cmp::Ordering::Less
                        }
                    };
                    if better {
                        best = Some((i, j, result));
                    }
                }
            }
            match best {
                Some((i, j, result)) => {
                    work.apply(i, j, result);
                }
                None => break,
            }
        } else {
            let mut applied = false;
            for (i, j) in pairs {
                let (Some(op1), Some(op2)) = (work.slots[i].as_deref(), work.slots[j].as_deref())
                else {
                    continue;
                };
                let (l1, l2) = (ctx.label(op1.target()), ctx.label(op2.target()));
                if let Some(result) = try_rule(stage, op1, op2, l1, l2) {
                    work.apply(i, j, result);
                    applied = true;
                }
            }
            if !applied {
                break;
            }
        }
    }
}

/// Reduces a PUL with the requested [`ReductionKind`].
///
/// Plain and deterministic reductions run on the incremental worklist engine;
/// the canonical form keeps the exhaustive sweep, whose globally `<p`-least
/// pair selection is what makes the result unique (Def. 9).
pub fn reduce_with(pul: &Pul, kind: ReductionKind) -> Pul {
    let ctx = Ctx { labels: pul.labels() };
    let mut work = Work::of(pul);
    if kind == ReductionKind::Canonical {
        for stage in 1..=9 {
            run_stage_sweep(stage, &mut work, &ctx, true);
        }
    } else {
        let slot_labels: Vec<Option<&NodeLabel>> =
            work.slots.iter().map(|s| s.as_ref().and_then(|op| ctx.label(op.target()))).collect();
        let idx = PairIndex::build(&work, &slot_labels);
        let mut counts = [0usize; 11];
        for (_, op) in work.active() {
            counts[name_ordinal(op.name())] += 1;
        }
        for stage in 1..=9 {
            if stage_feasible(stage, &counts) {
                run_stage_worklist(stage, &mut work, &slot_labels, &idx, &mut counts);
            }
        }
    }
    finish_reduction(work, &ctx, pul, kind)
}

/// The pre-worklist reduction engine (candidate set rebuilt after every
/// sweep). Semantically equivalent to [`reduce_with`]; kept as the measured
/// "before" of the fig-6b ablation benchmark.
pub fn reduce_sweep_baseline(pul: &Pul, kind: ReductionKind) -> Pul {
    let ctx = Ctx { labels: pul.labels() };
    let mut work = Work::of(pul);
    for stage in 1..=9 {
        run_stage_sweep(stage, &mut work, &ctx, kind == ReductionKind::Canonical);
    }
    finish_reduction(work, &ctx, pul, kind)
}

/// Shared tail of every reduction: stage 10 (`ins↓` → `ins↙`) for the
/// deterministic kinds, canonical presentation order, label carry-over.
fn finish_reduction(mut work: Work<'_>, ctx: &Ctx<'_>, pul: &Pul, kind: ReductionKind) -> Pul {
    // Stage 10: make the semantics deterministic by rewriting ins↓ into ins↙.
    if matches!(kind, ReductionKind::Deterministic | ReductionKind::Canonical) {
        for op in work.slots.iter_mut().flatten() {
            if op.name() == OpName::InsInto {
                let content = op.content().unwrap_or(&[]).to_vec();
                *op = Cow::Owned(UpdateOp::ins_first(op.target(), content));
            }
        }
    }
    let mut ops: Vec<UpdateOp> = work.slots.into_iter().flatten().map(Cow::into_owned).collect();
    if kind == ReductionKind::Canonical {
        // Present the canonical form in a fixed order (<o) — the PUL is an
        // unordered list, so this only normalizes the presentation.
        ops.sort_by(|a, b| op_order(ctx, a, b).then_with(|| a.name().code().cmp(b.name().code())));
        ops.dedup_by(|a, b| {
            a.target() == b.target()
                && a.name() == b.name()
                && a.param_sort_key() == b.param_sort_key()
        });
    }
    let mut out = Pul::with_capacity(ops.len());
    for op in ops {
        out.push(op);
    }
    for label in pul.labels().values() {
        out.add_label(label.clone());
    }
    out
}

/// Naive O(k²) reduction that examines *every* ordered pair at each step, used
/// as a baseline in the ablation benchmark for Fig. 6.b. Produces a PUL with
/// the same semantics as [`reduce_with`] under [`ReductionKind::Plain`].
pub fn reduce_naive(pul: &Pul) -> Pul {
    let ctx = Ctx { labels: pul.labels() };
    let mut work = Work::of(pul);
    for stage in 1..=9 {
        loop {
            let active: Vec<usize> = work.active().map(|(i, _)| i).collect();
            let mut applied = false;
            'outer: for &i in &active {
                for &j in &active {
                    if i == j {
                        continue;
                    }
                    let (Some(op1), Some(op2)) =
                        (work.slots[i].as_deref(), work.slots[j].as_deref())
                    else {
                        continue;
                    };
                    let (l1, l2) = (ctx.label(op1.target()), ctx.label(op2.target()));
                    if let Some(result) = try_rule(stage, op1, op2, l1, l2) {
                        work.apply(i, j, result);
                        applied = true;
                        break 'outer;
                    }
                }
            }
            if !applied {
                break;
            }
        }
    }
    let mut out = Pul::new();
    for op in work.slots.into_iter().flatten() {
        out.push(op.into_owned());
    }
    for label in pul.labels().values() {
        out.add_label(label.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pul::obtainable::{obtainable_documents, substitutable, DEFAULT_OUTCOME_LIMIT};

    // Local, non-deprecated shorthands: the unit tests exercise the reduction
    // kinds, not the deprecated wrapper functions.
    fn reduce(pul: &Pul) -> Pul {
        reduce_with(pul, ReductionKind::Plain)
    }

    fn deterministic_reduce(pul: &Pul) -> Pul {
        reduce_with(pul, ReductionKind::Deterministic)
    }

    fn canonical_form(pul: &Pul) -> Pul {
        reduce_with(pul, ReductionKind::Canonical)
    }
    use xdm::parser::parse_document;
    use xdm::Document;
    use xlabel::Labeling;

    /// A document shaped like the Figure 1 fragment, with known identifiers:
    /// issue=1 … paper(4) title(5) text(6) author(7) text(8) initPage(9=attr)
    /// paper(10) title(11) text(12) authors(13) author(14) text(15) author(16) text(17)
    fn figure1() -> (Document, Labeling) {
        let doc = parse_document(
            "<issue><volume>30</volume><paper initPage=\"12\"><title>Old title</title>\
             <author>A.Chaudhri</author></paper><paper><title>Report</title><authors>\
             <author>One</author><author>Two</author></authors></paper></issue>",
        )
        .unwrap();
        let labeling = Labeling::assign(&doc);
        (doc, labeling)
    }

    fn pul_of(doc_labels: &Labeling, ops: Vec<UpdateOp>) -> Pul {
        Pul::from_ops(ops, doc_labels)
    }

    fn assert_reduction_substitutable(doc: &Document, pul: &Pul, reduced: &Pul) {
        assert!(
            substitutable(doc, reduced, pul, DEFAULT_OUTCOME_LIMIT).unwrap(),
            "reduced PUL must be substitutable to the original\noriginal: {pul}\nreduced: {reduced}"
        );
    }

    #[test]
    fn rule_o1_same_target_override() {
        let (doc, labels) = figure1();
        let title = doc.find_elements("title")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::rename(title, "heading"),
                UpdateOp::replace_node(title, vec![Tree::element_with_text("author", "M M")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::ReplaceNode);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rule_o1_delete_overrides_everything_local() {
        let (doc, labels) = figure1();
        let paper = doc.find_elements("paper")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::rename(paper, "article"),
                UpdateOp::ins_last(paper, vec![Tree::element("x")]),
                UpdateOp::ins_attributes(paper, vec![Tree::attribute("k", "v")]),
                UpdateOp::delete(paper),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::Delete);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rule_o1_keeps_sibling_insertions() {
        // ins← / ins→ survive a deletion of the same target (they insert
        // siblings, which are not removed by the deletion).
        let (doc, labels) = figure1();
        let title = doc.find_elements("title")[0];
        let pul = pul_of(
            &labels,
            vec![UpdateOp::ins_before(title, vec![Tree::element("kept")]), UpdateOp::delete(title)],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 2, "sibling insertion must not be dropped: {red}");
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rule_o2_repc_overrides_children_insertions() {
        let (doc, labels) = figure1();
        let paper = doc.find_elements("paper")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_last(paper, vec![Tree::element("x")]),
                UpdateOp::ins_into(paper, vec![Tree::element("y")]),
                UpdateOp::replace_content(paper, Some("done".into())),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::ReplaceContent);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rule_o3_ancestor_override() {
        let (doc, labels) = figure1();
        let paper = doc.find_elements("paper")[0];
        let title = doc.find_elements("title")[0];
        let title_text = doc.children(title).unwrap()[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_value(title_text, "New"),
                UpdateOp::rename(title, "heading"),
                UpdateOp::delete(paper),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::Delete);
        assert_eq!(red.ops()[0].target(), paper);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rule_o4_repc_ancestor_override_spares_attributes() {
        let (doc, labels) = figure1();
        let paper = doc.find_elements("paper")[0];
        let init_page = doc.attribute_by_name(paper, "initPage").unwrap().unwrap();
        let title = doc.find_elements("title")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::rename(title, "heading"),
                UpdateOp::replace_value(init_page, "99"),
                UpdateOp::replace_content(paper, None),
            ],
        );
        let red = reduce(&pul);
        // the rename of the (removed) title is dropped, the attribute update survives
        assert_eq!(red.len(), 2, "{red}");
        assert!(red
            .ops()
            .iter()
            .any(|o| o.name() == OpName::ReplaceValue && o.target() == init_page));
        assert!(red.ops().iter().any(|o| o.name() == OpName::ReplaceContent));
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rule_i5_collapses_same_type_insertions() {
        let (doc, labels) = figure1();
        let author = doc.find_elements("author")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "A C")]),
                UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "G G")]),
                UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "F C")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].content().unwrap().len(), 3);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rules_i6_i7_fold_ins_into() {
        let (doc, labels) = figure1();
        let authors = doc.find_element("authors").unwrap();
        // ins↓ + ins↙ → ins↙ with [L2, L1]
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_into(authors, vec![Tree::element_with_text("author", "Into")]),
                UpdateOp::ins_first(authors, vec![Tree::element_with_text("author", "First")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::InsFirst);
        let texts: Vec<String> =
            red.ops()[0].content().unwrap().iter().map(|t| t.text_content(t.root_id())).collect();
        assert_eq!(texts, vec!["First", "Into"]);
        assert_reduction_substitutable(&doc, &pul, &red);

        // ins↓ + ins↘ → ins↘ with [L1, L2]
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_into(authors, vec![Tree::element_with_text("author", "Into")]),
                UpdateOp::ins_last(authors, vec![Tree::element_with_text("author", "Last")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::InsLast);
        let texts: Vec<String> =
            red.ops()[0].content().unwrap().iter().map(|t| t.text_content(t.root_id())).collect();
        assert_eq!(texts, vec!["Into", "Last"]);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rules_ir8_ir9_fold_sibling_insertions_into_repn() {
        let (doc, labels) = figure1();
        let title = doc.find_elements("title")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_node(title, vec![Tree::element_with_text("t", "R")]),
                UpdateOp::ins_before(title, vec![Tree::element_with_text("b", "B")]),
                UpdateOp::ins_after(title, vec![Tree::element_with_text("a", "A")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1, "{red}");
        let op = &red.ops()[0];
        assert_eq!(op.name(), OpName::ReplaceNode);
        let names: Vec<String> =
            op.content().unwrap().iter().map(|t| t.root_name().unwrap()).collect();
        assert_eq!(names, vec!["b", "t", "a"]);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rules_i10_i11_fold_ins_into_with_child_sibling_insertions() {
        let (doc, labels) = figure1();
        let authors = doc.find_element("authors").unwrap();
        let first_author = doc.children(authors).unwrap()[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_into(authors, vec![Tree::element_with_text("author", "Into")]),
                UpdateOp::ins_before(
                    first_author,
                    vec![Tree::element_with_text("author", "Before")],
                ),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::InsBefore);
        assert_eq!(red.ops()[0].target(), first_author);
        assert_reduction_substitutable(&doc, &pul, &red);

        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_into(authors, vec![Tree::element_with_text("author", "Into")]),
                UpdateOp::ins_after(first_author, vec![Tree::element_with_text("author", "After")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::InsAfter);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rules_ir12_ir13_fold_parent_insertions_into_repn() {
        let (doc, labels) = figure1();
        let authors = doc.find_element("authors").unwrap();
        let first_author = doc.children(authors).unwrap()[0];
        // repN(child) + ins↓(parent)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_node(first_author, vec![Tree::element_with_text("author", "R")]),
                UpdateOp::ins_into(authors, vec![Tree::element_with_text("author", "I")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::ReplaceNode);
        assert_eq!(red.ops()[0].content().unwrap().len(), 2);
        assert_reduction_substitutable(&doc, &pul, &red);

        // repN(attribute) + insA(owner)
        let paper = doc.find_elements("paper")[0];
        let init_page = doc.attribute_by_name(paper, "initPage").unwrap().unwrap();
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_node(init_page, vec![Tree::attribute("initPage", "1")]),
                UpdateOp::ins_attributes(paper, vec![Tree::attribute("lastPage", "9")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1, "{red}");
        assert_eq!(red.ops()[0].name(), OpName::ReplaceNode);
        assert_eq!(red.ops()[0].content().unwrap().len(), 2);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rules_i14_to_ir17_first_last_child() {
        let (doc, labels) = figure1();
        let authors = doc.find_element("authors").unwrap();
        let first = doc.children(authors).unwrap()[0];
        let last = *doc.children(authors).unwrap().last().unwrap();

        // I14: ins←(first child) + ins↙(parent)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_before(first, vec![Tree::element_with_text("author", "B")]),
                UpdateOp::ins_first(authors, vec![Tree::element_with_text("author", "F")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::InsBefore);
        assert_reduction_substitutable(&doc, &pul, &red);

        // I15: ins→(last child) + ins↘(parent)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_after(last, vec![Tree::element_with_text("author", "A")]),
                UpdateOp::ins_last(authors, vec![Tree::element_with_text("author", "L")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::InsAfter);
        assert_reduction_substitutable(&doc, &pul, &red);

        // IR16: repN(first child) + ins↙(parent)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_node(first, vec![Tree::element_with_text("author", "R")]),
                UpdateOp::ins_first(authors, vec![Tree::element_with_text("author", "F")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::ReplaceNode);
        assert_reduction_substitutable(&doc, &pul, &red);

        // IR17: repN(last child) + ins↘(parent)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_node(last, vec![Tree::element_with_text("author", "R")]),
                UpdateOp::ins_last(authors, vec![Tree::element_with_text("author", "L")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::ReplaceNode);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn rules_i18_to_ir20_siblings() {
        let (doc, labels) = figure1();
        let authors = doc.find_element("authors").unwrap();
        let kids = doc.children(authors).unwrap().to_vec();
        let (left, right) = (kids[0], kids[1]);

        // I18: ins←(right) + ins→(left sibling)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::ins_before(right, vec![Tree::element_with_text("author", "B")]),
                UpdateOp::ins_after(left, vec![Tree::element_with_text("author", "A")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::InsBefore);
        assert_reduction_substitutable(&doc, &pul, &red);

        // IR19: repN(right) + ins→(left sibling)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_node(right, vec![Tree::element_with_text("author", "R")]),
                UpdateOp::ins_after(left, vec![Tree::element_with_text("author", "A")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::ReplaceNode);
        assert_reduction_substitutable(&doc, &pul, &red);

        // IR20: repN(left) + ins←(right sibling)
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::replace_node(left, vec![Tree::element_with_text("author", "R")]),
                UpdateOp::ins_before(right, vec![Tree::element_with_text("author", "B")]),
            ],
        );
        let red = reduce(&pul);
        assert_eq!(red.len(), 1);
        assert_eq!(red.ops()[0].name(), OpName::ReplaceNode);
        assert_reduction_substitutable(&doc, &pul, &red);
    }

    #[test]
    fn deterministic_reduction_removes_nondeterminism() {
        let (doc, labels) = figure1();
        let authors = doc.find_element("authors").unwrap();
        let pul = pul_of(
            &labels,
            vec![UpdateOp::ins_into(authors, vec![Tree::element_with_text("author", "X")])],
        );
        let plain = reduce(&pul);
        assert_eq!(plain.ops()[0].name(), OpName::InsInto, "plain reduction keeps ins↓");
        let det = deterministic_reduce(&pul);
        assert_eq!(det.ops()[0].name(), OpName::InsFirst, "stage 10 rewrites ins↓ into ins↙");
        let o = obtainable_documents(&doc, &det, DEFAULT_OUTCOME_LIMIT).unwrap();
        assert_eq!(o.len(), 1, "deterministic reduction has a single outcome (Prop. 1)");
        assert_reduction_substitutable(&doc, &pul, &det);
    }

    #[test]
    fn canonical_form_is_unique_and_idempotent() {
        let (doc, labels) = figure1();
        let author = doc.find_elements("author")[0];
        // the same logical PUL written with operations in two different orders
        let ops_a = vec![
            UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "G G")]),
            UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "A C")]),
            UpdateOp::rename(author, "writer"),
        ];
        let ops_b = vec![
            UpdateOp::rename(author, "writer"),
            UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "A C")]),
            UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "G G")]),
        ];
        let c1 = canonical_form(&pul_of(&labels, ops_a));
        let c2 = canonical_form(&pul_of(&labels, ops_b));
        assert_eq!(c1.to_string(), c2.to_string(), "canonical form is unique (Prop. 1)");
        // idempotence: (∆r)r = ∆r
        let c3 = canonical_form(&c1);
        assert_eq!(c1.to_string(), c3.to_string());
        // the insertion parameters are ordered lexicographically (A C before G G)
        let ins = c1.ops().iter().find(|o| o.name() == OpName::InsAfter).unwrap();
        let texts: Vec<String> =
            ins.content().unwrap().iter().map(|t| t.text_content(t.root_id())).collect();
        assert_eq!(texts, vec!["A C", "G G"]);
        assert_reduction_substitutable(&doc, &pul_of(&labels, vec![]), &Pul::new());
    }

    #[test]
    fn reduction_is_idempotent() {
        let (doc, labels) = figure1();
        let paper = doc.find_elements("paper")[0];
        let title = doc.find_elements("title")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::rename(title, "t"),
                UpdateOp::delete(paper),
                UpdateOp::ins_after(paper, vec![Tree::element("x")]),
                UpdateOp::ins_after(paper, vec![Tree::element("y")]),
            ],
        );
        for kind in [ReductionKind::Plain, ReductionKind::Deterministic, ReductionKind::Canonical] {
            let once = reduce_with(&pul, kind);
            let twice = reduce_with(&once, kind);
            assert_eq!(once.to_string(), twice.to_string(), "(∆r)r = ∆r for {kind:?}");
        }
    }

    #[test]
    fn naive_and_fast_reduction_agree_on_size() {
        let (doc, labels) = figure1();
        let paper = doc.find_elements("paper")[0];
        let title = doc.find_elements("title")[0];
        let author = doc.find_elements("author")[0];
        let pul = pul_of(
            &labels,
            vec![
                UpdateOp::rename(title, "t"),
                UpdateOp::replace_node(title, vec![Tree::element_with_text("t", "x")]),
                UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "1")]),
                UpdateOp::ins_after(author, vec![Tree::element_with_text("author", "2")]),
                UpdateOp::ins_attributes(paper, vec![Tree::attribute("k", "v")]),
            ],
        );
        let fast = reduce(&pul);
        let naive = reduce_naive(&pul);
        assert_eq!(fast.len(), naive.len());
        let d1 = doc.clone();
        assert_reduction_substitutable(&d1, &pul, &fast);
        assert_reduction_substitutable(&d1, &pul, &naive);
    }

    #[test]
    fn ops_without_labels_are_left_untouched() {
        // operations targeting unlabeled nodes cannot be proven related: the
        // reduction must keep them (sound, if not minimal).
        let mut pul = Pul::new();
        pul.push(UpdateOp::rename(100u64, "x"));
        pul.push(UpdateOp::delete(200u64));
        let red = reduce(&pul);
        assert_eq!(red.len(), 2);
    }
}
