//! PUL integration (§3.2): Definition 11 and Algorithm 1.
//!
//! Integration combines *parallel* PULs — PULs expressed against the same
//! document state — into a single PUL containing their non-conflicting
//! operations, plus the set of detected conflicts (Fig. 3). When no conflict
//! arises, integration coincides with the W3C merge and is equivalent to
//! applying the PULs in either order (Prop. 2).
//!
//! Algorithm 1 partitions the operations by target node (sorted in document
//! order), detects the local conflicts (types 1–4) within each partition, and
//! detects the non-local conflicts (type 5) with a single sweep over the
//! targets in document order, exploiting the containment labels carried by the
//! PULs instead of materialising the target tree.

use std::collections::{HashMap, HashSet};

use pul::{OpName, Pul};
use xdm::NodeId;
use xlabel::NodeLabel;

use crate::conflict::{
    local_override, non_local_override, symmetric_local_conflict, Conflict, ConflictType, OpRef,
};

/// The result of integrating a list of PULs (Def. 11): the PUL of
/// non-conflicting operations and the set of conflicts.
#[derive(Debug, Clone)]
pub struct Integration {
    /// `∆` — the operations not involved in any conflict, merged in one PUL.
    pub pul: Pul,
    /// `Γ` — the detected conflicts.
    pub conflicts: Vec<Conflict>,
}

impl Integration {
    /// Whether the integration succeeded without conflicts (and therefore
    /// coincides with the W3C merge, Prop. 2).
    pub fn is_conflict_free(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// References to every operation involved in some conflict.
    pub fn conflicted_ops(&self) -> HashSet<OpRef> {
        self.conflicts.iter().flat_map(|c| c.all_ops()).collect()
    }
}

fn label_of(puls: &[Pul], target: NodeId) -> Option<&NodeLabel> {
    puls.iter().find_map(|p| p.label(target))
}

/// Detects the local conflicts (types 1–4) among the operations of a single
/// target group. Only operations belonging to different PULs conflict.
fn local_conflicts(group: &[OpRef], puls: &[Pul], out: &mut Vec<Conflict>) {
    // --- symmetric conflicts (types 1–3): maximal sets per kind -----------
    let mut sym: HashMap<(ConflictType, OpName), Vec<OpRef>> = HashMap::new();
    for (i, &a) in group.iter().enumerate() {
        for &b in &group[i + 1..] {
            if a.pul == b.pul {
                continue;
            }
            let opa = a.resolve(puls);
            let opb = b.resolve(puls);
            if let Some(ct) = symmetric_local_conflict(opa, opb) {
                let key = (ct, opa.name());
                let entry = sym.entry(key).or_default();
                if !entry.contains(&a) {
                    entry.push(a);
                }
                if !entry.contains(&b) {
                    entry.push(b);
                }
            }
        }
    }
    let mut sym: Vec<((ConflictType, OpName), Vec<OpRef>)> = sym.into_iter().collect();
    sym.sort_by_key(|((ct, name), _)| (ct.code(), name.code()));
    for ((ct, _), mut ops) in sym {
        ops.sort();
        out.push(Conflict::symmetric(ct, ops));
    }
    // --- asymmetric local overriding (type 4) -----------------------------
    for &a in group {
        let opa = a.resolve(puls);
        if !matches!(opa.name(), OpName::ReplaceNode | OpName::Delete | OpName::ReplaceContent) {
            continue;
        }
        let mut overridden: Vec<OpRef> = Vec::new();
        for &b in group {
            if a == b || a.pul == b.pul {
                continue;
            }
            let opb = b.resolve(puls);
            if local_override(opa, opb) {
                overridden.push(b);
            }
        }
        if !overridden.is_empty() {
            overridden.sort();
            out.push(Conflict::asymmetric(ConflictType::LocalOverride, a, overridden));
        }
    }
}

/// Detects the non-local conflicts (type 5) with a sweep over the targets in
/// document order, using the containment labels.
fn non_local_conflicts(all: &[OpRef], puls: &[Pul], out: &mut Vec<Conflict>) {
    // Operations sorted by the start key of their target label (document order).
    let mut labeled: Vec<(OpRef, &NodeLabel)> = all
        .iter()
        .filter_map(|&r| label_of(puls, r.resolve(puls).target()).map(|l| (r, l)))
        .collect();
    labeled.sort_by(|(_, a), (_, b)| a.start.cmp(&b.start));

    // Active overriding intervals (repN/del/repC seen so far whose interval may
    // still contain upcoming targets).
    let mut active: Vec<(OpRef, &NodeLabel)> = Vec::new();
    let mut overridden: HashMap<OpRef, Vec<OpRef>> = HashMap::new();

    for &(r, label) in &labeled {
        // Drop intervals that ended before this target starts: they can no
        // longer contain any later target.
        active.retain(|(_, l)| l.end > label.start);
        let op = r.resolve(puls);
        for &(or, ol) in &active {
            if or.pul == r.pul || or == r {
                continue;
            }
            let overrider = or.resolve(puls);
            if non_local_override(overrider, ol, op, label) {
                overridden.entry(or).or_default().push(r);
            }
        }
        if matches!(op.name(), OpName::ReplaceNode | OpName::Delete | OpName::ReplaceContent) {
            active.push((r, label));
        }
    }
    let mut overridden: Vec<(OpRef, Vec<OpRef>)> = overridden.into_iter().collect();
    overridden.sort();
    for (or, mut ops) in overridden {
        ops.sort();
        out.push(Conflict::asymmetric(ConflictType::NonLocalOverride, or, ops));
    }
}

/// Integrates a list of parallel PULs (Algorithm 1, Def. 11).
pub fn integrate(puls: &[Pul]) -> Integration {
    // 1. Partition the operations by target, sorted in document order.
    let mut all: Vec<OpRef> = Vec::new();
    for (pi, p) in puls.iter().enumerate() {
        for oi in 0..p.ops().len() {
            all.push(OpRef::new(pi, oi));
        }
    }
    let mut groups: HashMap<NodeId, Vec<OpRef>> = HashMap::new();
    for &r in &all {
        groups.entry(r.resolve(puls).target()).or_default().push(r);
    }
    // Resolve each target's label once before sorting: `label_of` probes
    // every PUL's label map, and paying that inside the comparator makes the
    // sort the dominant cost of integrating many-target batches.
    let mut keyed: Vec<(NodeId, Option<&NodeLabel>)> =
        groups.keys().map(|&t| (t, label_of(puls, t))).collect();
    keyed.sort_by(|(a, la), (b, lb)| match (la, lb) {
        (Some(la), Some(lb)) => la.start.cmp(&lb.start),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => a.cmp(b),
    });
    let targets: Vec<NodeId> = keyed.into_iter().map(|(t, _)| t).collect();

    // 2. Local conflicts (types 1–4) per target group.
    let mut conflicts: Vec<Conflict> = Vec::new();
    for t in &targets {
        local_conflicts(&groups[t], puls, &mut conflicts);
    }

    // 3. Non-local conflicts (type 5) across groups.
    non_local_conflicts(&all, puls, &mut conflicts);

    // 4. ∆ = operations not involved in any conflict.
    let conflicted: HashSet<OpRef> = conflicts.iter().flat_map(|c| c.all_ops()).collect();
    let mut merged = Pul::new();
    for &r in &all {
        if !conflicted.contains(&r) {
            merged.push(r.resolve(puls).clone());
        }
    }
    for p in puls {
        for l in p.labels().values() {
            merged.add_label(l.clone());
        }
    }
    Integration { pul: merged, conflicts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pul::apply::{apply_pul, ApplyOptions};
    use pul::obtainable::canonical_string;
    use pul::UpdateOp;
    use xdm::parser::parse_document;
    use xdm::{Document, Tree};
    use xlabel::Labeling;

    /// Document shaped like the paper's Figure 1 paper fragment:
    /// `<paper(4)><title(5)>…(6)</title><author(7)>…(8)</author><pages(9)>…</pages></paper>`
    fn fixture() -> (Document, Labeling) {
        let doc = parse_document(
            "<issue><volume>30</volume><number>3</number><paper><title>Old</title>\
             <author>Ada</author><pages>33</pages></paper></issue>",
        )
        .unwrap();
        let labeling = Labeling::assign(&doc);
        (doc, labeling)
    }

    #[test]
    fn example_6_no_conflicts_and_merge() {
        // ∆1 = {insA(paper, initPage="132"), repV(author text, 'MM'), repN(pages, <pages/>)}
        // ∆2 = {insA(paper, lastPage="134"), ren(title, heading)} — no conflicts.
        let (doc, labels) = fixture();
        let paper = doc.find_element("paper").unwrap();
        let title = doc.find_element("title").unwrap();
        let author_text = doc.children(doc.find_element("author").unwrap()).unwrap()[0];
        let pages = doc.find_element("pages").unwrap();

        let p1 = Pul::from_ops(
            vec![
                UpdateOp::ins_attributes(paper, vec![Tree::attribute("initPage", "132")]),
                UpdateOp::replace_value(author_text, "MM"),
                UpdateOp::replace_node(pages, vec![Tree::element("pages")]),
            ],
            &labels,
        );
        let p2 = Pul::from_ops(
            vec![
                UpdateOp::ins_attributes(paper, vec![Tree::attribute("lastPage", "134")]),
                UpdateOp::rename(title, "heading"),
            ],
            &labels,
        );
        let result = integrate(&[p1.clone(), p2.clone()]);
        assert!(result.is_conflict_free(), "conflicts: {:?}", result.conflicts);
        assert_eq!(result.pul.len(), 5, "integration = merge when conflict-free");

        // Prop. 2: the integrated PUL is equivalent to the sequential
        // applications ∆1;∆2 and ∆2;∆1.
        let mut together = doc.clone();
        apply_pul(&mut together, &result.pul, &ApplyOptions::default()).unwrap();
        let mut seq12 = doc.clone();
        apply_pul(&mut seq12, &p1, &ApplyOptions::default()).unwrap();
        apply_pul(&mut seq12, &p2, &ApplyOptions::default()).unwrap();
        let mut seq21 = doc.clone();
        apply_pul(&mut seq21, &p2, &ApplyOptions::default()).unwrap();
        apply_pul(&mut seq21, &p1, &ApplyOptions::default()).unwrap();
        assert_eq!(canonical_string(&together), canonical_string(&seq12));
        assert_eq!(canonical_string(&together), canonical_string(&seq21));
    }

    #[test]
    fn example_7_conflict_detection() {
        // Three producers, mirroring Example 7:
        //   ∆1 = {insA(author, email=…), ins→(title, <author>G G</author>), repV(pages text, '34')}
        //   ∆2 = {insA(author, email=…), ins→(title, <author>A C</author>), repV(pages text, '35'),
        //         repV(author text, 'F C'), ins←(author, <author>F C</author>)}
        //   ∆3 = {repC(author, 'G G')}
        let (doc, labels) = fixture();
        let title = doc.find_element("title").unwrap();
        let author = doc.find_element("author").unwrap();
        let author_text = doc.children(author).unwrap()[0];
        let pages = doc.find_element("pages").unwrap();
        let pages_text = doc.children(pages).unwrap()[0];

        let p1 = Pul::from_ops(
            vec![
                UpdateOp::ins_attributes(author, vec![Tree::attribute("email", "catania@disi")]),
                UpdateOp::ins_after(title, vec![Tree::element_with_text("author", "G G")]),
                UpdateOp::replace_value(pages_text, "34"),
            ],
            &labels,
        );
        let p2 = Pul::from_ops(
            vec![
                UpdateOp::ins_attributes(author, vec![Tree::attribute("email", "catania@gmail")]),
                UpdateOp::ins_after(title, vec![Tree::element_with_text("author", "A C")]),
                UpdateOp::replace_value(pages_text, "35"),
                UpdateOp::replace_value(author_text, "F C"),
                UpdateOp::ins_before(author, vec![Tree::element_with_text("author", "F C")]),
            ],
            &labels,
        );
        let p3 =
            Pul::from_ops(vec![UpdateOp::replace_content(author, Some("G G".into()))], &labels);

        let result = integrate(&[p1, p2, p3]);
        let types: Vec<u8> = result.conflicts.iter().map(|c| c.ctype.code()).collect();
        // cf1: insertion order on the two ins→(title); cf2: repeated attribute
        // insertion on author; cf3: repeated modification on pages text;
        // cf4: non-local override of repV(author text) by repC(author).
        assert_eq!(result.conflicts.len(), 4, "conflicts: {types:?}");
        assert_eq!(types.iter().filter(|&&t| t == 3).count(), 1);
        assert_eq!(types.iter().filter(|&&t| t == 2).count(), 1);
        assert_eq!(types.iter().filter(|&&t| t == 1).count(), 1);
        assert_eq!(types.iter().filter(|&&t| t == 5).count(), 1);
        let cf5 = result.conflicts.iter().find(|c| c.ctype.code() == 5).unwrap();
        assert_eq!(cf5.overrider.unwrap().pul, 2, "the repC of ∆3 is the overrider");
        assert_eq!(cf5.ops.len(), 1, "only the repV of ∆2 on the author text is overridden");
        assert_eq!(cf5.ops[0].pul, 1);

        // non-conflicting operations: everything else
        let involved = result.conflicted_ops().len();
        assert_eq!(result.pul.len() + involved, 3 + 5 + 1);
        // ins←(author) of ∆2 and insA targets differ → the ins← op is not conflicted
        assert!(result.pul.ops().iter().any(|o| o.name() == OpName::InsBefore));
    }

    #[test]
    fn type4_local_override_across_puls() {
        let (doc, labels) = fixture();
        let title = doc.find_element("title").unwrap();
        let p1 = Pul::from_ops(vec![UpdateOp::rename(title, "heading")], &labels);
        let p2 = Pul::from_ops(vec![UpdateOp::delete(title)], &labels);
        let result = integrate(&[p1, p2]);
        assert_eq!(result.conflicts.len(), 1);
        let c = &result.conflicts[0];
        assert_eq!(c.ctype, ConflictType::LocalOverride);
        assert_eq!(c.overrider.unwrap(), OpRef::new(1, 0));
        assert_eq!(c.ops, vec![OpRef::new(0, 0)]);
        assert!(result.pul.is_empty());
    }

    #[test]
    fn same_pul_operations_never_conflict() {
        // Two ins→ on the same target in the *same* PUL are not a conflict
        // (they would be reduced, not reconciled).
        let (doc, labels) = fixture();
        let title = doc.find_element("title").unwrap();
        let p1 = Pul::from_ops(
            vec![
                UpdateOp::ins_after(title, vec![Tree::element("a")]),
                UpdateOp::ins_after(title, vec![Tree::element("b")]),
            ],
            &labels,
        );
        let result = integrate(&[p1]);
        assert!(result.is_conflict_free());
        assert_eq!(result.pul.len(), 2);
    }

    #[test]
    fn type5_requires_descendant_targets() {
        let (doc, labels) = fixture();
        let paper = doc.find_element("paper").unwrap();
        let volume = doc.find_element("volume").unwrap();
        // deleting <paper> does not override an op on <volume> (not a descendant)
        let p1 = Pul::from_ops(vec![UpdateOp::delete(paper)], &labels);
        let p2 = Pul::from_ops(vec![UpdateOp::rename(volume, "vol")], &labels);
        let result = integrate(&[p1, p2]);
        assert!(result.is_conflict_free());

        // but it does override an op on <title> (a descendant)
        let title = doc.find_element("title").unwrap();
        let p1 = Pul::from_ops(vec![UpdateOp::delete(paper)], &labels);
        let p2 = Pul::from_ops(vec![UpdateOp::rename(title, "t")], &labels);
        let result = integrate(&[p1, p2]);
        assert_eq!(result.conflicts.len(), 1);
        assert_eq!(result.conflicts[0].ctype, ConflictType::NonLocalOverride);
    }

    #[test]
    fn type5_repc_spares_attributes_of_its_target() {
        let (doc, labels) = fixture();
        let paper = doc.find_element("paper").unwrap();
        let title = doc.find_element("title").unwrap();
        // give the paper an attribute and target it from another PUL
        let mut doc2 = doc.clone();
        let attr = doc2.new_attribute("id", "p1");
        doc2.add_attribute(paper, attr).unwrap();
        let labels2 = Labeling::assign(&doc2);

        let p1 = Pul::from_ops(vec![UpdateOp::replace_content(paper, None)], &labels2);
        let p2 = Pul::from_ops(
            vec![UpdateOp::replace_value(attr, "p2"), UpdateOp::rename(title, "t")],
            &labels2,
        );
        let puls = vec![p1, p2];
        let result = integrate(&puls);
        // only the op on <title> is overridden; the attribute op survives
        assert_eq!(result.conflicts.len(), 1);
        let c = &result.conflicts[0];
        assert_eq!(c.ctype, ConflictType::NonLocalOverride);
        assert_eq!(c.ops.len(), 1);
        assert_eq!(c.ops[0].resolve(&puls).target(), title);
        let _ = labels;
    }

    #[test]
    fn deletions_in_different_puls_do_not_conflict() {
        let (doc, labels) = fixture();
        let title = doc.find_element("title").unwrap();
        let p1 = Pul::from_ops(vec![UpdateOp::delete(title)], &labels);
        let p2 = Pul::from_ops(vec![UpdateOp::delete(title)], &labels);
        let result = integrate(&[p1, p2]);
        assert!(result.is_conflict_free(), "two deletions of the same node agree");
    }

    #[test]
    fn empty_input_integrates_to_empty() {
        let result = integrate(&[]);
        assert!(result.is_conflict_free());
        assert!(result.pul.is_empty());
    }
}
