//! Conflict resolution / PUL reconciliation (§4.2): Algorithm 3, Definition 12.
//!
//! Given the conflicts detected by [`crate::integrate`] and the
//! [`Policy`](crate::policy::Policy) of each producer, the best-effort
//! resolution algorithm processes one conflict at a time — in an order designed
//! so that a conflict is handled only once the operations that could remove its
//! focus node have been dealt with — and solves it by *excluding* operations,
//! unless the policies of the involved producers forbid it, in which case the
//! whole reconciliation fails.

use std::collections::HashSet;
use std::fmt;

use pul::{Pul, UpdateOp};
use xdm::{NodeId, Tree};
use xlabel::NodeLabel;

use crate::conflict::{acts_as_delete, Conflict, ConflictType, OpRef};
use crate::integrate::{integrate, Integration};
use crate::policy::Policy;
use crate::reduce::{reduce_with, ReductionKind};

/// Reconciliation failure: some conflict cannot be solved without violating a
/// producer policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconcileError {
    /// The conflict that could not be solved.
    pub conflict: Conflict,
    /// Why no resolution satisfying the policies exists.
    pub reason: String,
}

impl fmt::Display for ReconcileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsolvable conflict {}: {}", self.conflict, self.reason)
    }
}

impl std::error::Error for ReconcileError {}

fn policy_of(policies: &[Policy], r: OpRef) -> Policy {
    policies.get(r.pul).copied().unwrap_or_default()
}

fn label_of(puls: &[Pul], target: NodeId) -> Option<&NodeLabel> {
    puls.iter().find_map(|p| p.label(target))
}

/// The focus node of a conflict: the common target for symmetric conflicts,
/// the overrider target for asymmetric ones.
fn focus(conflict: &Conflict, puls: &[Pul]) -> NodeId {
    match conflict.overrider {
        Some(o) => o.resolve(puls).target(),
        None => conflict.ops.first().map(|r| r.resolve(puls).target()).unwrap_or(NodeId::new(0)),
    }
}

/// The precedence rank (i)–(ix) used to order conflicts with the same focus.
fn precedence(conflict: &Conflict, puls: &[Pul]) -> u8 {
    use pul::OpName::*;
    let overrider_name = conflict.overrider.map(|o| o.resolve(puls).name());
    let first_name = conflict.ops.first().map(|o| o.resolve(puls).name());
    let first_is_del =
        conflict.ops.first().map(|o| acts_as_delete(o.resolve(puls))).unwrap_or(false);
    match conflict.ctype {
        ConflictType::RepeatedModification => match first_name {
            Some(ReplaceNode) if !first_is_del => 1,
            Some(ReplaceNode) => 3,
            Some(ReplaceContent) => 5,
            _ => 7,
        },
        ConflictType::LocalOverride => match overrider_name {
            Some(ReplaceNode) => {
                if conflict.overrider.map(|o| acts_as_delete(o.resolve(puls))).unwrap_or(false) {
                    4
                } else {
                    2
                }
            }
            Some(Delete) => 4,
            Some(ReplaceContent) => 6,
            _ => 7,
        },
        ConflictType::RepeatedAttributeInsertion => 7,
        ConflictType::InsertionOrder => 8,
        ConflictType::NonLocalOverride => 9,
    }
}

/// Outcome of solving one conflict.
struct Solved {
    excluded: Vec<OpRef>,
    generated: Vec<UpdateOp>,
}

fn solve(
    conflict: &Conflict,
    overrider: Option<OpRef>,
    os: &[OpRef],
    puls: &[Pul],
    policies: &[Policy],
) -> Result<Solved, ReconcileError> {
    match conflict.ctype {
        // ------------------------------------------------------- asymmetric
        ConflictType::LocalOverride | ConflictType::NonLocalOverride => {
            let overrider = overrider.expect("asymmetric conflicts have an overrider");
            // Preferred resolution: exclude the overridden operations.
            let blocked: Vec<OpRef> = os
                .iter()
                .copied()
                .filter(|&r| policy_of(policies, r).forbids_excluding(r.resolve(puls)))
                .collect();
            if blocked.is_empty() {
                return Ok(Solved { excluded: os.to_vec(), generated: vec![] });
            }
            // Alternative: exclude the overriding operation instead.
            if !policy_of(policies, overrider).forbids_excluding(overrider.resolve(puls)) {
                return Ok(Solved { excluded: vec![overrider], generated: vec![] });
            }
            Err(ReconcileError {
                conflict: conflict.clone(),
                reason: format!(
                    "the policies of producers {:?} forbid discarding either side of the override",
                    blocked.iter().map(|r| r.pul + 1).collect::<Vec<_>>()
                ),
            })
        }
        // -------------------------------------------------- insertion order
        ConflictType::InsertionOrder => {
            // All involved insertions are excluded and replaced by a single
            // insertion whose parameter concatenates theirs.
            let order_keepers: Vec<usize> = os
                .iter()
                .map(|r| r.pul)
                .filter(|&p| policies.get(p).map(|pl| pl.preserve_insertion_order).unwrap_or(false))
                .collect::<HashSet<_>>()
                .into_iter()
                .collect();
            if order_keepers.len() > 1 {
                return Err(ReconcileError {
                    conflict: conflict.clone(),
                    reason: "more than one producer requires preservation of the insertion order"
                        .into(),
                });
            }
            let mut ordered: Vec<OpRef> = os.to_vec();
            ordered.sort_by_key(|r| {
                let keeps_order = order_keepers.first() == Some(&r.pul);
                (if keeps_order { 0 } else { 1 }, r.pul, r.op)
            });
            let template = os[0].resolve(puls);
            let mut content: Vec<Tree> = Vec::new();
            for r in &ordered {
                content.extend(r.resolve(puls).content().unwrap_or(&[]).iter().cloned());
            }
            let target = template.target();
            let generated = match template.name() {
                pul::OpName::InsBefore => UpdateOp::ins_before(target, content),
                pul::OpName::InsAfter => UpdateOp::ins_after(target, content),
                pul::OpName::InsFirst => UpdateOp::ins_first(target, content),
                pul::OpName::InsLast => UpdateOp::ins_last(target, content),
                other => {
                    unreachable!("insertion-order conflicts only involve insertions ({other:?})")
                }
            };
            Ok(Solved { excluded: os.to_vec(), generated: vec![generated] })
        }
        // -------------------------------------- non-order symmetric conflicts
        ConflictType::RepeatedModification | ConflictType::RepeatedAttributeInsertion => {
            // All but one of the involved operations are excluded. Operations
            // whose exclusion is forbidden by their producer policy must be the
            // one that is kept; more than one such operation makes the conflict
            // unsolvable.
            let must_keep: Vec<OpRef> = os
                .iter()
                .copied()
                .filter(|&r| policy_of(policies, r).forbids_excluding(r.resolve(puls)))
                .collect();
            if must_keep.len() > 1 {
                return Err(ReconcileError {
                    conflict: conflict.clone(),
                    reason: format!(
                        "producers {:?} all require their conflicting operation to be preserved",
                        must_keep.iter().map(|r| r.pul + 1).collect::<Vec<_>>()
                    ),
                });
            }
            let keep = must_keep.first().copied().unwrap_or(os[0]);
            let excluded = os.iter().copied().filter(|&r| r != keep).collect();
            Ok(Solved { excluded, generated: vec![] })
        }
    }
}

/// Resolves the conflicts of an integration according to the producer
/// policies (Algorithm 3) and returns the reconciled PUL (Def. 12):
/// the non-conflicting operations, the conflicting operations that were not
/// excluded, and the operations generated while solving order conflicts.
pub fn reconcile_integration(
    puls: &[Pul],
    integration: &Integration,
    policies: &[Policy],
) -> Result<Pul, ReconcileError> {
    // Order the conflicts: focus node in document order, then precedence.
    let mut ordered: Vec<&Conflict> = integration.conflicts.iter().collect();
    ordered.sort_by(|a, b| {
        let fa = focus(a, puls);
        let fb = focus(b, puls);
        let key = |c: &Conflict, f: NodeId| {
            (label_of(puls, f).map(|l| l.start.clone()), f, precedence(c, puls))
        };
        key(a, fa).cmp(&key(b, fb))
    });

    let mut excluded: HashSet<OpRef> = HashSet::new();
    let mut generated: Vec<UpdateOp> = Vec::new();
    let mut involved: Vec<OpRef> = Vec::new();

    for conflict in ordered {
        involved.extend(conflict.all_ops());
        let overrider = conflict.overrider.filter(|o| !excluded.contains(o));
        let os: Vec<OpRef> =
            conflict.ops.iter().copied().filter(|r| !excluded.contains(r)).collect();
        // Automatically solved conflicts (the involved operations are gone).
        let auto = if conflict.ctype.is_symmetric() {
            os.len() <= 1
        } else {
            overrider.is_none() || os.is_empty()
        };
        if auto {
            continue;
        }
        let solved = solve(conflict, overrider, &os, puls, policies)?;
        excluded.extend(solved.excluded);
        generated.extend(solved.generated);
    }

    // Reconciled PUL = ∆ ∪ (involved conflict ops \ E) ∪ generated.
    let mut out = integration.pul.clone();
    let mut seen: HashSet<OpRef> = HashSet::new();
    for r in involved {
        if !excluded.contains(&r) && seen.insert(r) {
            out.push(r.resolve(puls).clone());
        }
    }
    for op in generated {
        out.push(op);
    }
    Ok(out)
}

/// Integrates a list of PULs and reconciles the detected conflicts under the
/// given producer policies. The result is returned in deterministic-reduced
/// form, which also removes redundancies introduced by the resolution.
pub fn reconcile(puls: &[Pul], policies: &[Policy]) -> Result<Pul, ReconcileError> {
    let integration = integrate(puls);
    let reconciled = reconcile_integration(puls, &integration, policies)?;
    Ok(reduce_with(&reconciled, ReductionKind::Plain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pul::OpName;
    use xdm::parser::parse_document;
    use xdm::Document;
    use xlabel::Labeling;

    fn fixture() -> (Document, Labeling) {
        let doc = parse_document(
            "<issue><volume>30</volume><number>3</number><paper><title>Old</title>\
             <author>Ada</author><pages>33</pages></paper></issue>",
        )
        .unwrap();
        let labeling = Labeling::assign(&doc);
        (doc, labeling)
    }

    /// The three PULs of Example 7 / Example 9.
    fn example_puls(doc: &Document, labels: &Labeling) -> Vec<Pul> {
        let title = doc.find_element("title").unwrap();
        let author = doc.find_element("author").unwrap();
        let author_text = doc.children(author).unwrap()[0];
        let pages = doc.find_element("pages").unwrap();
        let pages_text = doc.children(pages).unwrap()[0];

        let p1 = Pul::from_ops(
            vec![
                UpdateOp::ins_attributes(author, vec![Tree::attribute("email", "catania@disi")]),
                UpdateOp::ins_after(title, vec![Tree::element_with_text("author", "G G")]),
                UpdateOp::replace_value(pages_text, "34"),
            ],
            labels,
        );
        let p2 = Pul::from_ops(
            vec![
                UpdateOp::ins_attributes(author, vec![Tree::attribute("email", "catania@gmail")]),
                UpdateOp::ins_after(title, vec![Tree::element_with_text("author", "A C")]),
                UpdateOp::replace_value(pages_text, "35"),
                UpdateOp::replace_value(author_text, "F C"),
                UpdateOp::ins_before(author, vec![Tree::element_with_text("author", "F C")]),
            ],
            labels,
        );
        let p3 = Pul::from_ops(vec![UpdateOp::replace_content(author, Some("G G".into()))], labels);
        vec![p1, p2, p3]
    }

    #[test]
    fn example_9_reconciliation_with_policies() {
        let (doc, labels) = fixture();
        let puls = example_puls(&doc, &labels);
        // Producer 1: insertion order and inserted data must be preserved;
        // producer 2: no constraints; producer 3: inserted data only.
        let policies = vec![
            Policy {
                preserve_insertion_order: true,
                preserve_inserted_data: true,
                preserve_removed_data: false,
            },
            Policy::relaxed(),
            Policy::inserted_data(),
        ];
        let integration = integrate(&puls);
        assert_eq!(integration.conflicts.len(), 4);
        let reconciled = reconcile_integration(&puls, &integration, &policies).unwrap();

        // The order conflict is solved by a generated ins→ whose parameter puts
        // producer 1's author first (G G before A C).
        let generated = reconciled
            .ops()
            .iter()
            .find(|o| o.name() == OpName::InsAfter && o.content().map(|c| c.len()) == Some(2))
            .expect("generated insertion");
        let texts: Vec<String> =
            generated.content().unwrap().iter().map(|t| t.text_content(t.root_id())).collect();
        assert_eq!(texts, vec!["G G", "A C"]);

        // Producer 1's email attribute wins (inserted data preserved), and its
        // repV('34') wins over producer 2's repV('35').
        assert!(reconciled
            .ops()
            .iter()
            .any(|o| matches!(o, UpdateOp::InsAttributes { content, .. }
            if content[0].value(content[0].root_id()).unwrap() == Some("catania@disi"))));
        assert!(reconciled
            .ops()
            .iter()
            .any(|o| matches!(o, UpdateOp::ReplaceValue { value, .. } if value == "34")));
        assert!(!reconciled
            .ops()
            .iter()
            .any(|o| matches!(o, UpdateOp::ReplaceValue { value, .. } if value == "35")));
        // Producer 2's overridden repV(author text) is excluded, producer 3's
        // repC is kept, and producer 2's ins← is kept (never conflicted).
        assert!(reconciled.ops().iter().any(|o| o.name() == OpName::ReplaceContent));
        assert!(reconciled.ops().iter().any(|o| o.name() == OpName::InsBefore));
        assert!(!reconciled
            .ops()
            .iter()
            .any(|o| matches!(o, UpdateOp::ReplaceValue { value, .. } if value == "F C")));
    }

    #[test]
    fn example_9_all_strict_order_policies_fail() {
        let (doc, labels) = fixture();
        let puls = example_puls(&doc, &labels);
        let policies = vec![Policy::insertion_order(); 3];
        let err = reconcile(&puls, &policies).unwrap_err();
        assert!(err.to_string().contains("insertion order"), "{err}");
    }

    #[test]
    fn conflict_free_reconciliation_is_the_merge() {
        let (doc, labels) = fixture();
        let title = doc.find_element("title").unwrap();
        let pages = doc.find_element("pages").unwrap();
        let p1 = Pul::from_ops(vec![UpdateOp::rename(title, "t")], &labels);
        let p2 = Pul::from_ops(vec![UpdateOp::rename(pages, "pp")], &labels);
        let out = reconcile(&[p1, p2], &[Policy::relaxed(), Policy::relaxed()]).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn override_prefers_dropping_the_overridden_op() {
        let (doc, labels) = fixture();
        let title = doc.find_element("title").unwrap();
        let p1 = Pul::from_ops(vec![UpdateOp::rename(title, "t")], &labels);
        let p2 = Pul::from_ops(vec![UpdateOp::delete(title)], &labels);
        let out = reconcile(&[p1, p2], &[Policy::relaxed(), Policy::relaxed()]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.ops()[0].name(), OpName::Delete);
    }

    #[test]
    fn override_respects_inserted_data_policy_by_dropping_the_overrider() {
        let (doc, labels) = fixture();
        let title = doc.find_element("title").unwrap();
        // Producer 1 inserts children into <title> and insists they stay;
        // producer 2 deletes <title> but has no constraints → the delete goes.
        let p1 = Pul::from_ops(
            vec![UpdateOp::ins_last(title, vec![Tree::element_with_text("sub", "x")])],
            &labels,
        );
        let p2 = Pul::from_ops(vec![UpdateOp::delete(title)], &labels);
        let out = reconcile(&[p1, p2], &[Policy::inserted_data(), Policy::relaxed()]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.ops()[0].name(), OpName::InsLast);
    }

    #[test]
    fn override_with_conflicting_policies_fails() {
        let (doc, labels) = fixture();
        let title = doc.find_element("title").unwrap();
        let p1 = Pul::from_ops(
            vec![UpdateOp::ins_last(title, vec![Tree::element_with_text("sub", "x")])],
            &labels,
        );
        let p2 = Pul::from_ops(vec![UpdateOp::delete(title)], &labels);
        let err =
            reconcile(&[p1, p2], &[Policy::inserted_data(), Policy::removed_data()]).unwrap_err();
        assert!(err.to_string().contains("unsolvable conflict"));
    }

    #[test]
    fn repeated_modification_keeps_the_protected_producer() {
        let (doc, labels) = fixture();
        let title = doc.find_element("title").unwrap();
        let text = doc.children(title).unwrap()[0];
        let p1 = Pul::from_ops(vec![UpdateOp::replace_value(text, "first")], &labels);
        let p2 = Pul::from_ops(vec![UpdateOp::replace_value(text, "second")], &labels);
        // producer 2 insists its data is preserved → its value wins
        let out = reconcile(&[p1, p2], &[Policy::relaxed(), Policy::inserted_data()]).unwrap();
        assert_eq!(out.len(), 1);
        assert!(matches!(&out.ops()[0], UpdateOp::ReplaceValue { value, .. } if value == "second"));
        // both insist → failure
        let (doc, labels) = fixture();
        let text = doc.children(doc.find_element("title").unwrap()).unwrap()[0];
        let p1 = Pul::from_ops(vec![UpdateOp::replace_value(text, "first")], &labels);
        let p2 = Pul::from_ops(vec![UpdateOp::replace_value(text, "second")], &labels);
        assert!(reconcile(&[p1, p2], &[Policy::inserted_data(), Policy::inserted_data()]).is_err());
    }

    #[test]
    fn cascading_exclusions_auto_solve_later_conflicts() {
        // Deleting <paper> overrides everything inside it; once the inner
        // operations are excluded, their own mutual conflicts are auto-solved.
        let (doc, labels) = fixture();
        let paper = doc.find_element("paper").unwrap();
        let title = doc.find_element("title").unwrap();
        let text = doc.children(title).unwrap()[0];
        let p1 = Pul::from_ops(vec![UpdateOp::delete(paper)], &labels);
        let p2 = Pul::from_ops(vec![UpdateOp::replace_value(text, "a")], &labels);
        let p3 = Pul::from_ops(vec![UpdateOp::replace_value(text, "b")], &labels);
        let out =
            reconcile(&[p1, p2, p3], &[Policy::relaxed(), Policy::relaxed(), Policy::relaxed()])
                .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.ops()[0].name(), OpName::Delete);
    }
}
