//! The conflict model of §3.2: Fig. 3 rules and Definition 10.
//!
//! Conflicts arise between operations of *different* PULs that are to be
//! integrated as parallel update requests. Five types are distinguished:
//!
//! 1. **repeated modification** — two replacements of the same kind with the
//!    same target (they would be incompatible in a single PUL);
//! 2. **repeated attribute insertion** — two `insA` on the same target
//!    inserting an attribute with the same name (a dynamic repetition error);
//! 3. **element insertion order** — two insertions of the same kind (except
//!    `ins↓`) with the same target, whose relative order would be arbitrary;
//! 4. **local override** — an operation overridden by a `del`/`repN` (or a
//!    children insertion overridden by a `repC`) with the same target;
//! 5. **non-local override** — an operation overridden by a `del`/`repN`/`repC`
//!    targeted at an ancestor of its target.
//!
//! Types 1–3 are symmetric, types 4–5 are asymmetric (there is an *overriding*
//! operation and a set of *overridden* ones).

use std::fmt;

use pul::{OpName, Pul, UpdateOp};
use xlabel::NodeLabel;

/// A reference to an operation inside a list of PULs being integrated:
/// `(PUL index, operation index within that PUL)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpRef {
    /// Index of the PUL in the input list.
    pub pul: usize,
    /// Index of the operation within that PUL.
    pub op: usize,
}

impl OpRef {
    /// Creates a reference.
    pub fn new(pul: usize, op: usize) -> Self {
        OpRef { pul, op }
    }

    /// Resolves the reference against the input PUL list.
    pub fn resolve<'a>(&self, puls: &'a [Pul]) -> &'a UpdateOp {
        &puls[self.pul].ops()[self.op]
    }
}

impl fmt::Display for OpRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "∆{}#{}", self.pul + 1, self.op)
    }
}

/// The conflict type (1–5 of §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConflictType {
    /// Type 1 — repeated modification.
    RepeatedModification,
    /// Type 2 — repeated attribute insertion.
    RepeatedAttributeInsertion,
    /// Type 3 — element insertion order.
    InsertionOrder,
    /// Type 4 — local override.
    LocalOverride,
    /// Type 5 — non-local override.
    NonLocalOverride,
}

impl ConflictType {
    /// The numeric code used by the paper (1–5).
    pub fn code(self) -> u8 {
        match self {
            ConflictType::RepeatedModification => 1,
            ConflictType::RepeatedAttributeInsertion => 2,
            ConflictType::InsertionOrder => 3,
            ConflictType::LocalOverride => 4,
            ConflictType::NonLocalOverride => 5,
        }
    }

    /// Whether the conflict type is symmetric (types 1–3).
    pub fn is_symmetric(self) -> bool {
        self.code() <= 3
    }
}

impl fmt::Display for ConflictType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type {}", self.code())
    }
}

/// A conflict (Def. 10): `⟨op, OS, ct⟩` where `op` is the overriding operation
/// for asymmetric conflicts (and unspecified, `Λ`, for symmetric ones) and
/// `OS` is the (maximal) set of involved/overridden operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The overriding operation (`Λ` for symmetric conflicts).
    pub overrider: Option<OpRef>,
    /// The set of conflicting / overridden operations.
    pub ops: Vec<OpRef>,
    /// The conflict type.
    pub ctype: ConflictType,
}

impl Conflict {
    /// Builds a symmetric conflict (types 1–3).
    pub fn symmetric(ctype: ConflictType, ops: Vec<OpRef>) -> Self {
        debug_assert!(ctype.is_symmetric());
        Conflict { overrider: None, ops, ctype }
    }

    /// Builds an asymmetric conflict (types 4–5).
    pub fn asymmetric(ctype: ConflictType, overrider: OpRef, ops: Vec<OpRef>) -> Self {
        debug_assert!(!ctype.is_symmetric());
        Conflict { overrider: Some(overrider), ops, ctype }
    }

    /// Every operation involved in the conflict (overrider included).
    pub fn all_ops(&self) -> Vec<OpRef> {
        let mut v = self.ops.clone();
        if let Some(o) = self.overrider {
            v.push(o);
        }
        v
    }
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ov = self.overrider.map(|o| o.to_string()).unwrap_or_else(|| "Λ".into());
        let ops: Vec<String> = self.ops.iter().map(|o| o.to_string()).collect();
        write!(f, "⟨{ov}, {{{}}}, {}⟩", ops.join(", "), self.ctype.code())
    }
}

/// Whether an operation behaves as a deletion for conflict purposes
/// (`del` or `repN` with an empty replacement list, cf. footnote 3 of §3.2).
pub fn acts_as_delete(op: &UpdateOp) -> bool {
    match op.name() {
        OpName::Delete => true,
        OpName::ReplaceNode => op.content().map(|c| c.is_empty()).unwrap_or(false),
        _ => false,
    }
}

/// Pairwise check of the Fig. 3 symmetric *local* conflict rules (types 1–3)
/// for two operations with the same target, belonging to different PULs.
pub fn symmetric_local_conflict(op1: &UpdateOp, op2: &UpdateOp) -> Option<ConflictType> {
    debug_assert_eq!(op1.target(), op2.target());
    let (n1, n2) = (op1.name(), op2.name());
    // Type 1: repeated modification.
    if n1 == n2
        && matches!(
            n1,
            OpName::Rename | OpName::ReplaceNode | OpName::ReplaceContent | OpName::ReplaceValue
        )
    {
        return Some(ConflictType::RepeatedModification);
    }
    // Type 2: repeated attribute insertion (same attribute name inserted twice).
    if n1 == OpName::InsAttributes && n2 == OpName::InsAttributes {
        let names1: Vec<String> =
            op1.content().unwrap_or(&[]).iter().filter_map(|t| t.root_name()).collect();
        let shares = op2
            .content()
            .unwrap_or(&[])
            .iter()
            .filter_map(|t| t.root_name())
            .any(|n| names1.contains(&n));
        if shares {
            return Some(ConflictType::RepeatedAttributeInsertion);
        }
    }
    // Type 3: element insertion order (same insertion kind, except ins↓).
    if n1 == n2
        && matches!(n1, OpName::InsBefore | OpName::InsAfter | OpName::InsFirst | OpName::InsLast)
    {
        return Some(ConflictType::InsertionOrder);
    }
    None
}

/// Fig. 3 *local overriding* (type 4): does `overrider` override `other` when
/// both target the same node?
pub fn local_override(overrider: &UpdateOp, other: &UpdateOp) -> bool {
    debug_assert_eq!(overrider.target(), other.target());
    let n1 = overrider.name();
    let n2 = other.name();
    // o(op1) ∈ {repN, del}, o(op2) ∈ {ren, repV, repC, ins↙, ins↘, insA, ins↓, del}
    // and not both deletions.
    if matches!(n1, OpName::ReplaceNode | OpName::Delete)
        && matches!(
            n2,
            OpName::Rename
                | OpName::ReplaceValue
                | OpName::ReplaceContent
                | OpName::InsFirst
                | OpName::InsLast
                | OpName::InsAttributes
                | OpName::InsInto
                | OpName::Delete
        )
        && !(acts_as_delete(overrider) && acts_as_delete(other))
    {
        return true;
    }
    // o(op1) = repC, o(op2) ∈ {ins↙, ins↓, ins↘}
    if n1 == OpName::ReplaceContent
        && matches!(n2, OpName::InsFirst | OpName::InsInto | OpName::InsLast)
    {
        return true;
    }
    false
}

/// Fig. 3 *non-local overriding* (type 5): does `overrider` override `other`
/// given the labels of their (distinct) targets?
pub fn non_local_override(
    overrider: &UpdateOp,
    overrider_label: &NodeLabel,
    other: &UpdateOp,
    other_label: &NodeLabel,
) -> bool {
    if other.name() == OpName::Delete {
        return false;
    }
    match overrider.name() {
        OpName::ReplaceNode | OpName::Delete => other_label.is_descendant_of(overrider_label),
        OpName::ReplaceContent => other_label.is_descendant_not_attr_of(overrider_label),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdm::Tree;

    #[test]
    fn opref_display_and_resolve() {
        let mut p1 = Pul::new();
        p1.push(UpdateOp::delete(5u64));
        let mut p2 = Pul::new();
        p2.push(UpdateOp::rename(7u64, "x"));
        let puls = vec![p1, p2];
        let r = OpRef::new(1, 0);
        assert_eq!(r.to_string(), "∆2#0");
        assert_eq!(r.resolve(&puls).name(), OpName::Rename);
    }

    #[test]
    fn conflict_type_metadata() {
        assert!(ConflictType::RepeatedModification.is_symmetric());
        assert!(ConflictType::InsertionOrder.is_symmetric());
        assert!(!ConflictType::LocalOverride.is_symmetric());
        assert_eq!(ConflictType::NonLocalOverride.code(), 5);
    }

    #[test]
    fn type1_repeated_modification() {
        let a = UpdateOp::replace_value(9u64, "34");
        let b = UpdateOp::replace_value(9u64, "35");
        assert_eq!(symmetric_local_conflict(&a, &b), Some(ConflictType::RepeatedModification));
        let a = UpdateOp::rename(9u64, "x");
        let b = UpdateOp::replace_value(9u64, "35");
        assert_eq!(symmetric_local_conflict(&a, &b), None);
    }

    #[test]
    fn type2_repeated_attribute_insertion() {
        let a = UpdateOp::ins_attributes(7u64, vec![Tree::attribute("email", "a@disi")]);
        let b = UpdateOp::ins_attributes(7u64, vec![Tree::attribute("email", "b@gmail")]);
        assert_eq!(
            symmetric_local_conflict(&a, &b),
            Some(ConflictType::RepeatedAttributeInsertion)
        );
        let c = UpdateOp::ins_attributes(7u64, vec![Tree::attribute("phone", "123")]);
        assert_eq!(
            symmetric_local_conflict(&a, &c),
            None,
            "different attribute names do not clash"
        );
    }

    #[test]
    fn type3_insertion_order() {
        let a = UpdateOp::ins_after(5u64, vec![Tree::element("x")]);
        let b = UpdateOp::ins_after(5u64, vec![Tree::element("y")]);
        assert_eq!(symmetric_local_conflict(&a, &b), Some(ConflictType::InsertionOrder));
        // ins↓ is excluded from the insertion-order conflict
        let a = UpdateOp::ins_into(5u64, vec![Tree::element("x")]);
        let b = UpdateOp::ins_into(5u64, vec![Tree::element("y")]);
        assert_eq!(symmetric_local_conflict(&a, &b), None);
    }

    #[test]
    fn type4_local_override() {
        let del = UpdateOp::delete(5u64);
        let ren = UpdateOp::rename(5u64, "x");
        let repn = UpdateOp::replace_node(5u64, vec![Tree::element("r")]);
        let repc = UpdateOp::replace_content(5u64, None);
        let ins_last = UpdateOp::ins_last(5u64, vec![Tree::element("c")]);
        let ins_before = UpdateOp::ins_before(5u64, vec![Tree::element("c")]);

        assert!(local_override(&del, &ren));
        assert!(local_override(&repn, &ren));
        assert!(local_override(&repn, &del), "repN overrides del");
        assert!(!local_override(&del, &del), "two deletions do not conflict");
        assert!(local_override(&repc, &ins_last), "repC overrides children insertions");
        assert!(!local_override(&repc, &ins_before), "repC does not override sibling insertions");
        assert!(!local_override(&ren, &del), "ren overrides nothing");
        assert!(!local_override(&del, &ins_before), "sibling insertions survive deletions");
    }

    #[test]
    fn acts_as_delete_covers_empty_repn() {
        assert!(acts_as_delete(&UpdateOp::delete(1u64)));
        assert!(acts_as_delete(&UpdateOp::replace_node(1u64, vec![])));
        assert!(!acts_as_delete(&UpdateOp::replace_node(1u64, vec![Tree::element("x")])));
        assert!(!acts_as_delete(&UpdateOp::rename(1u64, "x")));
    }

    #[test]
    fn conflict_display() {
        let c = Conflict::symmetric(
            ConflictType::InsertionOrder,
            vec![OpRef::new(0, 1), OpRef::new(1, 1)],
        );
        assert_eq!(c.to_string(), "⟨Λ, {∆1#1, ∆2#1}, 3⟩");
        let c = Conflict::asymmetric(
            ConflictType::LocalOverride,
            OpRef::new(2, 0),
            vec![OpRef::new(1, 3)],
        );
        assert!(c.to_string().contains("∆3#0"));
        assert_eq!(c.all_ops().len(), 2);
    }
}
