//! # pul-core — Dynamic reasoning on XML updates
//!
//! This crate implements the three PUL operators that constitute the main
//! contribution of *Cavalieri, Guerrini, Mesiti — Dynamic Reasoning on XML
//! Updates (EDBT 2011)*, §3–§4:
//!
//! * **Reduction** ([`reduce_with`]): collapse similar operations and remove
//!   operations whose effects are overridden (Fig. 2 rules, Def. 7), the
//!   **deterministic reduction** (Def. 8) and the unique **canonical form**
//!   (Def. 9, Prop. 1);
//! * **Integration** ([`integrate`]) of *parallel* PULs, detecting the five
//!   conflict classes of Fig. 3 via Algorithm 1 (Defs. 10–11, Prop. 2), and
//!   **reconciliation** ([`reconcile`]) under producer **policies**
//!   ([`policy`], §4.2, Algorithm 3, Def. 12);
//! * **Aggregation** ([`aggregate`]) of *sequential* PULs into a single PUL
//!   cumulating their effects (Fig. 5 rules, Algorithm 2, Def. 13, Prop. 4).
//!
//! All three operators work exclusively on the PULs themselves: structural
//! relationships between target nodes are evaluated on the labels carried by
//! the PULs (Table 1), never by accessing the document.

pub mod aggregate;
pub mod conflict;
pub mod integrate;
pub mod policy;
pub mod reconcile;
pub mod reduce;

pub use aggregate::{aggregate, aggregate_pair};
pub use conflict::{Conflict, ConflictType, OpRef};
pub use integrate::{integrate, Integration};
pub use policy::Policy;
pub use reconcile::{reconcile, reconcile_integration, ReconcileError};
pub use reduce::{reduce_naive, reduce_sweep_baseline, reduce_with, ReductionKind};
