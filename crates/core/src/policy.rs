//! Producer conflict-resolution policies (§4.2).
//!
//! Each PUL producer may attach a [`Policy`] to the PULs it sends for
//! execution. During reconciliation (Algorithm 3) the executor must strictly
//! observe these policies: a conflict resolution that would violate the policy
//! of any involved producer makes the whole reconciliation fail.

use pul::{OpClass, OpName, UpdateOp};

/// The conflict-resolution constraints a producer may specify (§4.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Policy {
    /// *Preservation of insertion order*: the order specified for inserted
    /// nodes must not be altered by operations of other PULs.
    pub preserve_insertion_order: bool,
    /// *Preservation of inserted data*: data inserted through `repN`, `repC`,
    /// `repV` or `ins` must occur in the final document.
    pub preserve_inserted_data: bool,
    /// *Preservation of removed data*: data removed through `repN`, `repC`,
    /// `repV` or `del` must not occur in the final document.
    pub preserve_removed_data: bool,
}

impl Policy {
    /// A producer with no constraints: any resolution is acceptable.
    pub fn relaxed() -> Self {
        Policy::default()
    }

    /// A producer that requires all three preservation guarantees.
    pub fn strict() -> Self {
        Policy {
            preserve_insertion_order: true,
            preserve_inserted_data: true,
            preserve_removed_data: true,
        }
    }

    /// Only insertion order must be preserved.
    pub fn insertion_order() -> Self {
        Policy { preserve_insertion_order: true, ..Policy::default() }
    }

    /// Only inserted data must be preserved.
    pub fn inserted_data() -> Self {
        Policy { preserve_inserted_data: true, ..Policy::default() }
    }

    /// Only removed data must be preserved (i.e. removals must happen).
    pub fn removed_data() -> Self {
        Policy { preserve_removed_data: true, ..Policy::default() }
    }

    /// Whether the operation inserts data into the final document (any
    /// insertion, a non-empty `repN`, a `repC` with text, or a `repV`).
    pub fn op_inserts_data(op: &UpdateOp) -> bool {
        match op.name() {
            _ if op.class() == OpClass::Insertion => true,
            OpName::ReplaceNode => op.content().map(|c| !c.is_empty()).unwrap_or(false),
            OpName::ReplaceContent => matches!(op, UpdateOp::ReplaceContent { text: Some(_), .. }),
            OpName::ReplaceValue => true,
            _ => false,
        }
    }

    /// Whether the operation removes data from the final document
    /// (`del`, `repN`, `repC` or `repV` — the list given in §4.2).
    pub fn op_removes_data(op: &UpdateOp) -> bool {
        matches!(
            op.name(),
            OpName::Delete | OpName::ReplaceNode | OpName::ReplaceContent | OpName::ReplaceValue
        )
    }

    /// Whether *excluding* (discarding) `op` from the reconciled PUL would
    /// violate this policy: discarding an insertion violates the inserted-data
    /// guarantee, discarding a removal violates the removed-data guarantee.
    pub fn forbids_excluding(&self, op: &UpdateOp) -> bool {
        (self.preserve_inserted_data && Self::op_inserts_data(op))
            || (self.preserve_removed_data && Self::op_removes_data(op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdm::Tree;

    #[test]
    fn constructors() {
        assert_eq!(Policy::relaxed(), Policy::default());
        assert!(Policy::strict().preserve_insertion_order);
        assert!(Policy::insertion_order().preserve_insertion_order);
        assert!(!Policy::insertion_order().preserve_inserted_data);
        assert!(Policy::inserted_data().preserve_inserted_data);
        assert!(Policy::removed_data().preserve_removed_data);
    }

    #[test]
    fn insert_and_remove_classification() {
        let ins = UpdateOp::ins_last(1u64, vec![Tree::element("x")]);
        let del = UpdateOp::delete(1u64);
        let repn = UpdateOp::replace_node(1u64, vec![Tree::element("x")]);
        let repn_empty = UpdateOp::replace_node(1u64, vec![]);
        let repv = UpdateOp::replace_value(1u64, "v");
        let repc_none = UpdateOp::replace_content(1u64, None);
        let ren = UpdateOp::rename(1u64, "n");

        assert!(Policy::op_inserts_data(&ins));
        assert!(!Policy::op_removes_data(&ins));
        assert!(Policy::op_removes_data(&del));
        assert!(!Policy::op_inserts_data(&del));
        assert!(Policy::op_inserts_data(&repn) && Policy::op_removes_data(&repn));
        assert!(!Policy::op_inserts_data(&repn_empty));
        assert!(Policy::op_inserts_data(&repv) && Policy::op_removes_data(&repv));
        assert!(!Policy::op_inserts_data(&repc_none) && Policy::op_removes_data(&repc_none));
        assert!(!Policy::op_inserts_data(&ren) && !Policy::op_removes_data(&ren));
    }

    #[test]
    fn forbids_excluding_follows_the_policy() {
        let ins = UpdateOp::ins_last(1u64, vec![Tree::element("x")]);
        let del = UpdateOp::delete(1u64);
        let ren = UpdateOp::rename(1u64, "n");

        let relaxed = Policy::relaxed();
        assert!(!relaxed.forbids_excluding(&ins));
        assert!(!relaxed.forbids_excluding(&del));

        let keep_inserted = Policy::inserted_data();
        assert!(keep_inserted.forbids_excluding(&ins));
        assert!(!keep_inserted.forbids_excluding(&del));

        let keep_removed = Policy::removed_data();
        assert!(keep_removed.forbids_excluding(&del));
        assert!(!keep_removed.forbids_excluding(&ins));

        assert!(!Policy::strict().forbids_excluding(&ren), "renames carry no data guarantee");
    }
}
