//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The container building this repository has no access to crates.io, so the
//! `benches/` targets depend on this path crate instead of the real
//! `criterion`. It keeps the same source-level API (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_with_input`,
//! `Bencher::iter`, …) and implements a small best-of-N wall-clock harness:
//! each benchmark runs for a warm-up iteration plus `sample_size` measured
//! iterations and reports the minimum, mean and maximum times.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one benchmark within a group: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an identifier from a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs the routine once as warm-up and `sample_size` measured times.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        std_black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        let n = bencher.samples.len().max(1) as f64;
        let total: Duration = bencher.samples.iter().sum();
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        let max = bencher.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{}: min {:.3} ms, mean {:.3} ms, max {:.3} ms ({} samples)",
            self.name,
            id,
            min.as_secs_f64() * 1e3,
            total.as_secs_f64() * 1e3 / n,
            max.as_secs_f64() * 1e3,
            bencher.samples.len(),
        );
    }

    /// Benchmarks a routine parameterised by a shared input.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    /// Benchmarks a plain routine.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run(&id.to_string(), f);
        self
    }

    /// Ends the group (a no-op in this shim, kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }
}

/// Declares a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function running the listed groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let input = 21u64;
        group.bench_with_input(BenchmarkId::new("double", input), &input, |b, &i| b.iter(|| i * 2));
        group.bench_function("noop", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
    }
}
