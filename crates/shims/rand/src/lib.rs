//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The container building this repository has no access to crates.io, so the
//! workload generators depend on this path crate instead of the real `rand`.
//! It implements `StdRng::seed_from_u64`, `Rng::{gen_range, gen_bool, gen}`
//! and `SliceRandom::shuffle` over a SplitMix64 generator. The streams are
//! deterministic per seed (which is all the seeded generators need) but do
//! **not** reproduce the byte streams of the real crate.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p outside [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Returns a uniformly distributed value of the output type.
    fn gen<T: Generable>(&mut self) -> T {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types producible by [`Rng::gen`].
pub trait Generable {
    /// Draws one value from the generator.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Generable for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Generable for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Generable for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Generable for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, and statistically fine for synthetic workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// The subset of `rand::seq::SliceRandom` this workspace uses.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
        assert!(Vec::<usize>::new().as_slice().choose(&mut rng).is_none());
    }
}
